"""Unit tests for base-station placement schemes."""

import numpy as np
import pytest

from repro.geometry.torus import pairwise_distances, torus_distance
from repro.infrastructure.placement import (
    hexagonal_cluster_placement,
    matched_placement,
    regular_grid_placement,
    uniform_placement,
)
from repro.mobility.clustered import place_home_points
from repro.mobility.shapes import UniformDiskShape


class TestMatched:
    def test_count_and_domain(self, rng):
        model = place_home_points(rng, n=200, m=8, radius=0.03)
        bs = matched_placement(rng, 40, model, UniformDiskShape(1.0), 0.02)
        assert bs.shape == (40, 2)
        assert np.all((bs >= 0) & (bs < 1))

    def test_without_blur_sits_in_clusters(self, rng):
        model = place_home_points(rng, n=100, m=4, radius=0.05)
        bs = matched_placement(rng, 30, model)
        distances = pairwise_distances(bs, model.centers)
        assert np.all(distances.min(axis=1) <= 0.05 + 1e-9)

    def test_blur_stays_within_mobility_radius(self, rng):
        model = place_home_points(rng, n=100, m=4, radius=0.05)
        scale = 0.02
        bs = matched_placement(rng, 30, model, UniformDiskShape(1.0), scale)
        distances = pairwise_distances(bs, model.centers)
        assert np.all(distances.min(axis=1) <= 0.05 + scale + 1e-9)

    def test_invalid_k(self, rng):
        model = place_home_points(rng, n=10, m=2, radius=0.05)
        with pytest.raises(ValueError):
            matched_placement(rng, 0, model)


class TestUniform:
    def test_count(self, rng):
        assert uniform_placement(rng, 17).shape == (17, 2)

    def test_invalid(self, rng):
        with pytest.raises(ValueError):
            uniform_placement(rng, 0)


class TestRegularGrid:
    def test_exact_count(self):
        for k in (1, 2, 5, 9, 16, 23):
            assert regular_grid_placement(k).shape == (k, 2)

    def test_perfect_square_is_lattice(self):
        bs = regular_grid_placement(9)
        xs = np.unique(np.round(bs[:, 0], 6))
        assert len(xs) == 3

    def test_deterministic(self):
        assert np.array_equal(regular_grid_placement(7), regular_grid_placement(7))

    def test_well_separated(self):
        bs = regular_grid_placement(16)
        distances = pairwise_distances(bs)
        np.fill_diagonal(distances, np.inf)
        assert distances.min() >= 0.2

    def test_invalid(self):
        with pytest.raises(ValueError):
            regular_grid_placement(0)


class TestHexagonalClusterPlacement:
    def test_count_per_cluster(self):
        centers = np.array([[0.25, 0.25], [0.75, 0.75]])
        bs = hexagonal_cluster_placement(centers, 0.1, 7)
        assert bs.shape == (14, 2)

    def test_single_bs_at_center(self):
        centers = np.array([[0.3, 0.6]])
        bs = hexagonal_cluster_placement(centers, 0.1, 1)
        assert np.allclose(bs, centers)

    def test_stations_near_their_cluster(self):
        centers = np.array([[0.2, 0.2], [0.8, 0.8]])
        radius = 0.08
        bs = hexagonal_cluster_placement(centers, radius, 5)
        for idx, center in enumerate(centers):
            mine = bs[idx * 5:(idx + 1) * 5]
            assert np.all(torus_distance(mine, center) <= radius * 1.1 + 1e-9)

    def test_lattice_is_well_spread(self):
        """Nearest-BS cells should have comparable populations: check the
        minimum pairwise BS distance is a reasonable fraction of the pitch
        expected from equal-area cells."""
        centers = np.array([[0.5, 0.5]])
        radius, per_cluster = 0.2, 12
        bs = hexagonal_cluster_placement(centers, radius, per_cluster)
        distances = pairwise_distances(bs)
        np.fill_diagonal(distances, np.inf)
        expected_pitch = np.sqrt(
            2 * np.pi * radius ** 2 / per_cluster / np.sqrt(3)
        )
        assert distances.min() >= 0.7 * expected_pitch

    def test_invalid_args(self):
        centers = np.zeros((1, 2))
        with pytest.raises(ValueError):
            hexagonal_cluster_placement(centers, 0.0, 3)
        with pytest.raises(ValueError):
            hexagonal_cluster_placement(centers, 0.1, 0)
