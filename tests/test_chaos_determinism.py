"""Chaos-determinism acceptance tests.

The resilience layer's contract is that failure handling never perturbs
science: a sweep that suffers injected worker kills, exceptions and NaN
results -- healed by retries -- must produce a :meth:`SweepResult.digest`
bit-identical to a clean serial run, at every worker count; and a sweep
interrupted mid-flight then resumed from its journal must converge to the
same digest as an uninterrupted run.
"""

import os

import pytest

from repro.core.regimes import NetworkParameters
from repro.experiments.delay import compare_delays
from repro.experiments.scaling import sweep_capacity
from repro.resilience import FaultPlan, ResilienceConfig, RetryPolicy
from repro.store import RunStore

GRID = [60, 120]
TRIALS = 2
SEED = 3


def _params():
    return NetworkParameters(alpha="1/4", cluster_exponent=1)


def _clean_digest():
    return sweep_capacity(
        _params(), GRID, scheme="A", trials=TRIALS, seed=SEED
    ).digest()


def _chaos_config():
    # one fault per distinct failure mode: a worker kill, an exception and
    # a NaN result, each firing on the first attempt only
    return ResilienceConfig(
        retry=RetryPolicy(max_attempts=3),
        fault_plan=FaultPlan.parse("kill@0,raise@1,nan@2"),
    )


class TestChaosDigestEquality:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_fault_injected_sweep_matches_clean_serial_run(self, workers):
        reference = _clean_digest()
        chaos = sweep_capacity(
            _params(),
            GRID,
            scheme="A",
            trials=TRIALS,
            seed=SEED,
            workers=workers,
            resilience=_chaos_config(),
        )
        assert chaos.digest() == reference
        assert chaos.stats.retries >= 3
        assert chaos.stats.failures == 0

    def test_fault_injected_inline_sweep_matches_too(self):
        chaos = sweep_capacity(
            _params(), GRID, scheme="A", trials=TRIALS, seed=SEED,
            resilience=_chaos_config(),
        )
        assert chaos.digest() == _clean_digest()


class TestChaosWithIncrementalIndexAndShm:
    """The PR 6 fast path under chaos: the delay-comparison sweep runs the
    packet simulator on its default :class:`IncrementalCellGridIndex` and
    ships the realisation's home-points / BS positions as shared-memory
    handles.  Fault-injected parallel runs must reproduce the serial
    result exactly, and the parent must unlink its blocks either way."""

    N = 48
    SLOTS = 120

    def _compare(self, **kwargs):
        return compare_delays(
            self.N, seed=SEED, slots=self.SLOTS, arrival_prob=0.01, **kwargs
        )

    @staticmethod
    def _shm_segments():
        try:
            return [
                name
                for name in os.listdir("/dev/shm")
                if name.startswith("repro_delay")
            ]
        except FileNotFoundError:
            return []

    @pytest.mark.parametrize("workers", [2, 4])
    def test_fault_injected_workers_match_serial_reference(self, workers):
        reference = self._compare()
        chaos = self._compare(
            workers=workers,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=3),
                fault_plan=FaultPlan.parse("kill@0,raise@1"),
            ),
        )
        assert chaos == reference
        assert self._shm_segments() == []


class _InterruptingStore(RunStore):
    """Delivers a keyboard interrupt once two trials have been journaled."""

    def __init__(self, root):
        super().__init__(root)
        self.puts = 0

    def put(self, key, value, duration):
        if self.puts >= 2:
            raise KeyboardInterrupt
        super().put(key, value, duration)
        self.puts += 1


class TestInterruptedThenResumed:
    def test_resumed_sweep_matches_uninterrupted_digest(self, tmp_path):
        reference = _clean_digest()
        store_dir = tmp_path / "store"

        interrupting = _InterruptingStore(store_dir)
        with pytest.raises(KeyboardInterrupt):
            sweep_capacity(
                _params(), GRID, scheme="A", trials=TRIALS, seed=SEED,
                store=interrupting,
            )

        # the drain recorded a resumable manifest before re-raising
        runs = interrupting.list_runs()
        assert any(run["status"] == "interrupted" for run in runs)

        resumed_store = RunStore(store_dir)
        result = sweep_capacity(
            _params(), GRID, scheme="A", trials=TRIALS, seed=SEED,
            store=resumed_store,
        )
        assert result.digest() == reference
        # the completed prefix was replayed from the journal, not re-run
        assert result.stats.cache_hits >= 2
        assert any(run["status"] == "completed" for run in resumed_store.list_runs())
