"""Small-surface tests for branches not covered elsewhere."""

import numpy as np
import pytest

from repro.core.order import Order
from repro.mobility.shapes import ConeShape
from repro.simulation.network import HybridNetwork
from repro.core.regimes import NetworkParameters
from repro.wireless.physical_model import PhysicalModel


class TestOrderRendering:
    def test_repr_integer_poly(self):
        assert repr(Order(2)) == "Order(2)"

    def test_repr_fractional_poly(self):
        assert repr(Order("1/2")) == "Order('1/2')"

    def test_repr_with_log(self):
        assert repr(Order(1, 1)) == "Order('1', '1')"

    def test_coerce_rejects_nonpositive_constant(self):
        with pytest.raises(ValueError):
            Order(1) + 0

    def test_coerce_rejects_garbage(self):
        with pytest.raises(TypeError):
            Order(1) * "nope"

    def test_positive_constant_coerces_to_theta_one(self):
        assert Order(-1) + 3 == Order(0)


class TestPhysicalModelEdges:
    def test_zero_noise_infinite_range(self):
        model = PhysicalModel(noise_power=0.0)
        assert model.max_range() == float("inf")

    def test_empty_schedule_feasible(self):
        model = PhysicalModel()
        assert model.is_feasible_schedule(np.zeros((3, 2)), [])
        assert model.link_sinrs(np.zeros((3, 2)), []).size == 0


class TestHybridNetworkWithOtherShapes:
    def test_cone_shape_network(self, rng):
        params = NetworkParameters(alpha="1/4", cluster_exponent=1)
        net = HybridNetwork.build(params, 120, rng, shape=ConeShape(1.0))
        result = net.scheme_a().sustainable_rate(net.sample_traffic())
        assert result.per_node_rate > 0

    def test_invalid_shape_rejected(self, rng):
        from repro.mobility.shapes import UniformDiskShape

        class Broken(UniformDiskShape):
            def density(self, d):
                d = np.asarray(d, dtype=float)
                return np.where(d <= self.support_radius, d, 0.0)  # increasing

        params = NetworkParameters(alpha="1/4", cluster_exponent=1)
        with pytest.raises(ValueError):
            HybridNetwork.build(params, 50, rng, shape=Broken(1.0))


class TestSchemeBZoneDefaults:
    def test_default_squarelet_zones(self, rng):
        from repro.routing.scheme_b import SchemeB

        homes = rng.random((20, 2))
        bs = rng.random((4, 2))
        ms_zone, bs_zone, tess = SchemeB.squarelet_zones(homes, bs)
        assert tess.cells_per_side == 4  # documented default

    def test_single_bs_network(self, rng):
        """k = 1 degenerates gracefully (one zone, no backbone wires)."""
        from repro.infrastructure.backbone import Backbone
        from repro.routing.scheme_b import SchemeB
        from repro.simulation.traffic import permutation_traffic

        scheme = SchemeB(
            np.zeros(10, dtype=int),
            np.zeros(1, dtype=int),
            np.full((10, 1), 0.05),
            Backbone(1, 1.0),
        )
        result = scheme.sustainable_rate(permutation_traffic(rng, 10))
        assert result.per_node_rate == pytest.approx(0.025)


class TestRealizedParameterEdges:
    def test_k_one_floor(self):
        params = NetworkParameters(
            alpha="1/4", cluster_exponent=1, bs_exponent=0, backbone_exponent=1
        )
        realized = params.realize(100)
        assert realized.k == 1

    def test_trivial_regime_network_static_positions(self, rng):
        params = NetworkParameters(
            alpha="3/4",
            cluster_exponent="1/4",
            cluster_radius_exponent="1/4",
            bs_exponent="3/4",
            backbone_exponent=1,
            validate=False,
        )
        net = HybridNetwork.build(params, 300, rng, mobility="static")
        scheme = net.scheme_c()
        assert scheme.cell_range > 0
