"""Integration tests: the persistent store beneath the trial runner and the
experiment drivers (cache hit/miss, resume-after-kill, determinism)."""

import numpy as np
import pytest

from repro.core.regimes import NetworkParameters
from repro.experiments.scaling import sweep_capacity, sweep_trial_payloads
from repro.parallel import TrialRunner
from repro.store import RunStore, TrialSeed, trial_key

PARAMS = NetworkParameters(alpha="1/4", cluster_exponent=1)


# ----------------------------------------------------------------------
# TrialRunner cache plumbing (with a fake in-memory cache)
# ----------------------------------------------------------------------
class FakeHit:
    def __init__(self, value, duration=0.5):
        self.value = value
        self.duration = duration


class FakeCache:
    def __init__(self, entries=None):
        self.entries = dict(entries or {})
        self.gets = []
        self.puts = []

    def get(self, key):
        self.gets.append(key)
        value = self.entries.get(key)
        return None if value is None else FakeHit(value)

    def put(self, key, value, duration):
        self.puts.append(key)
        self.entries[key] = value


def _double(rng, payload):
    return payload * 2


def _fail_on_odd(rng, payload):
    if payload % 2:
        raise RuntimeError("odd payload")
    return payload


class TestRunnerCache:
    def test_hits_skip_execution(self):
        cache = FakeCache({"k1": 11})
        runner = TrialRunner(_double)
        results = runner.run([5, 6], cache=cache, keys=["k1", "k2"])
        assert results[0].value == 11 and results[0].cached
        assert results[0].attempts == 0
        assert results[1].value == 12 and not results[1].cached
        assert runner.last_stats.cache_hits == 1
        assert runner.last_stats.cache_misses == 1

    def test_fresh_successes_are_journaled(self):
        cache = FakeCache()
        TrialRunner(_double).run([1, 2], cache=cache, keys=["a", "b"])
        assert cache.puts == ["a", "b"]
        assert cache.entries == {"a": 2, "b": 4}

    def test_failures_not_journaled(self):
        cache = FakeCache()
        results = TrialRunner(_fail_on_odd, retries=0).run(
            [1, 2], cache=cache, keys=["a", "b"]
        )
        assert not results[0].ok and results[1].ok
        assert cache.puts == ["b"]

    def test_none_key_is_uncacheable(self):
        cache = FakeCache({"a": 99})
        results = TrialRunner(_double).run([1, 2], cache=cache, keys=[None, "b"])
        assert results[0].value == 2  # executed despite a would-be hit
        assert cache.gets == ["b"]

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TrialRunner(_double).run([1, 2], cache=FakeCache(), keys=["a"])

    def test_all_cached_skips_pool_entirely(self):
        cache = FakeCache({"a": 1, "b": 2})
        runner = TrialRunner(_double, workers=2)  # pool would be expensive
        results = runner.run([10, 20], cache=cache, keys=["a", "b"])
        assert [r.value for r in results] == [1, 2]
        assert runner.last_stats.cache_hits == 2

    def test_partial_cache_preserves_seeding(self):
        """Trial i must receive the same spawned stream whether or not the
        other trials were served from cache."""

        def draw(rng, payload):
            return float(rng.random())

        cold = TrialRunner(draw).run([0, 1, 2])
        cache = FakeCache({"k0": cold[0].value, "k2": cold[2].value})
        warm = TrialRunner(draw).run([0, 1, 2], cache=cache, keys=["k0", "miss", "k2"])
        assert warm[1].value == cold[1].value
        assert warm[1].attempts == 1 and warm[0].cached and warm[2].cached

    def test_summary_mentions_cache(self):
        cache = FakeCache({"a": 1})
        runner = TrialRunner(_double)
        runner.run([1], cache=cache, keys=["a"])
        assert "cache_hits=1/1" in runner.last_stats.summary()


# ----------------------------------------------------------------------
# explicit trial seeds
# ----------------------------------------------------------------------
class TestTrialSeed:
    def test_matches_runner_spawn_exactly(self):
        """TrialSeed(e, i) names the same bit-stream as SeedSequence(e)'s
        i-th spawn child -- the equivalence the whole cache rests on."""
        children = np.random.SeedSequence(123).spawn(5)
        for index in range(5):
            explicit = TrialSeed(123, index).rng().random(16)
            spawned = np.random.default_rng(children[index]).random(16)
            assert np.array_equal(explicit, spawned)

    def test_payloads_carry_seeds(self):
        payloads = sweep_trial_payloads(PARAMS, [100, 200], "A", 2, seed=9)
        assert [p[5] for p in payloads] == [TrialSeed(9, i) for i in range(4)]

    def test_sweep_result_records_seeds(self):
        result = sweep_capacity(PARAMS, [100], scheme="A", trials=2, seed=9)
        assert result.seed == 9
        assert result.trial_seeds == (TrialSeed(9, 0), TrialSeed(9, 1))


# ----------------------------------------------------------------------
# sweep_capacity + RunStore end to end
# ----------------------------------------------------------------------
def run_sweep(store=None, seed=3, n_values=(100, 200), workers=None, **kwargs):
    return sweep_capacity(
        PARAMS, list(n_values), scheme="A", trials=2, seed=seed,
        workers=workers, store=store, **kwargs
    )


class TestSweepStore:
    def test_store_does_not_change_results(self, tmp_path):
        baseline = run_sweep()
        stored = run_sweep(store=tmp_path / "s")
        assert np.array_equal(stored.rates, baseline.rates)
        assert stored.digest() == baseline.digest()

    def test_second_run_all_hits_same_digest(self, tmp_path):
        first = run_sweep(store=tmp_path / "s")
        second = run_sweep(store=tmp_path / "s")
        assert first.stats.cache_hits == 0
        assert second.stats.cache_hits == 4
        assert second.digest() == first.digest()

    @pytest.mark.parametrize(
        "perturbation",
        [{"seed": 4}, {"n_values": (150, 250)}],
        ids=["seed", "grid"],
    )
    def test_parameter_perturbation_misses(self, tmp_path, perturbation):
        run_sweep(store=tmp_path / "s")
        perturbed = run_sweep(store=tmp_path / "s", **perturbation)
        assert perturbed.stats.cache_hits == 0

    def test_different_family_misses(self, tmp_path):
        run_sweep(store=tmp_path / "s")
        other = sweep_capacity(
            NetworkParameters(alpha="1/8", cluster_exponent=1),
            [100, 200], scheme="A", trials=2, seed=3, store=tmp_path / "s",
        )
        assert other.stats.cache_hits == 0

    def test_superset_grid_partially_hits(self, tmp_path):
        """Trials are keyed by content, not run membership: growing the
        grid reuses nothing only where the (n, seed-index) slots moved."""
        run_sweep(store=tmp_path / "s", n_values=(100, 200))
        wider = run_sweep(store=tmp_path / "s", n_values=(100, 200, 400))
        # n=100,200 trials keep spawn indices 0..3, so all four hit
        assert wider.stats.cache_hits == 4

    def test_resume_after_kill_replays_only_missing(self, tmp_path):
        """The acceptance scenario: a SIGKILLed --store sweep leaves a
        journal with some complete lines and possibly one truncated tail;
        re-invoking completes using cached trials for finished work with a
        digest bit-identical to a cold run at any worker count."""
        cold = run_sweep()  # no store: the reference digest
        store_dir = tmp_path / "s"
        run_sweep(store=store_dir)
        journal = RunStore(store_dir).journal_path
        lines = journal.read_text().splitlines()
        assert len(lines) == 4
        # keep 2 completed trials + a truncated tail, as a kill would
        journal.write_text("\n".join(lines[:2]) + '\n{"schema":1,"key":"x","val')
        resumed = run_sweep(store=store_dir)
        assert resumed.stats.cache_hits == 2
        assert resumed.digest() == cold.digest()

    def test_resume_with_pool_workers_bit_identical(self, tmp_path):
        cold = run_sweep()
        store_dir = tmp_path / "s"
        run_sweep(store=store_dir)
        journal = RunStore(store_dir).journal_path
        journal.write_text("\n".join(journal.read_text().splitlines()[:1]) + "\n")
        resumed = run_sweep(store=store_dir, workers=2)
        assert resumed.stats.cache_hits == 1
        assert resumed.digest() == cold.digest()

    def test_no_cache_recomputes_but_journals(self, tmp_path):
        store_dir = tmp_path / "s"
        run_sweep(store=store_dir)
        refreshed = run_sweep(store=RunStore(store_dir, use_cache=False))
        assert refreshed.stats.cache_hits == 0
        # journal refreshed: a cached run still sees every trial
        warm = run_sweep(store=store_dir)
        assert warm.stats.cache_hits == 4

    def test_manifest_recorded_with_provenance_and_timing(self, tmp_path):
        store_dir = tmp_path / "s"
        result = run_sweep(store=store_dir)
        manifest = RunStore(store_dir).list_runs()[0]
        assert manifest["command"] == "sweep"
        assert manifest["digest"] == result.digest()
        assert len(manifest["durations"]) == 4
        assert sum(manifest["durations"]) > 0
        assert manifest["stats"]["trials"] == 4
        assert manifest["provenance"]["schema_version"]


# ----------------------------------------------------------------------
# the other experiment drivers
# ----------------------------------------------------------------------
class TestExperimentStores:
    def test_figure1_panels_cached(self, tmp_path):
        from repro.experiments.figure1 import UNIFORM_PARAMS, make_panels

        specs = [(UNIFORM_PARAMS, "uniform")]
        first = make_panels(specs, 100, seed=42, grid_side=8, store=tmp_path / "s")
        store = RunStore(tmp_path / "s")
        second = make_panels(specs, 100, seed=42, grid_side=8, store=store)
        assert np.array_equal(first[0].positions, second[0].positions)
        assert np.array_equal(first[0].field.values, second[0].field.values)
        runs = store.list_runs()
        assert [run["command"] for run in runs].count("figure1") == 2

    def test_figure3_spot_checks_cached(self, tmp_path):
        from repro.experiments.figure3 import simulated_spot_checks

        points = [("1/4", "1/4", "0")]
        first = simulated_spot_checks(points, n=300, seed=3, store=tmp_path / "s")
        second = simulated_spot_checks(points, n=300, seed=3, store=tmp_path / "s")
        assert first[0] == second[0]

    def test_figure2_sessions_match_serial_trace(self, tmp_path):
        from repro.experiments.figure2 import (
            trace_scheme_b,
            trace_scheme_b_sessions,
        )

        serial = trace_scheme_b(200, np.random.default_rng(5))
        (traced,) = trace_scheme_b_sessions(200, seed=5, store=tmp_path / "s")
        assert traced.session == serial.session
        assert traced.per_node_rate == serial.per_node_rate
        assert traced.bottleneck == serial.bottleneck
        (cached,) = trace_scheme_b_sessions(200, seed=5, store=tmp_path / "s")
        assert cached.session == serial.session
        assert cached.per_node_rate == serial.per_node_rate

    def test_delay_pool_matches_inline(self, tmp_path):
        from repro.experiments.delay import compare_delays

        inline = compare_delays(80, seed=1, slots=300)
        pooled = compare_delays(80, seed=1, slots=300, workers=2,
                                store=tmp_path / "s")
        assert pooled.mean_delay == inline.mean_delay
        assert pooled.mean_hops == inline.mean_hops
        assert pooled.delivered == inline.delivered
        cached = compare_delays(80, seed=1, slots=300, store=tmp_path / "s")
        assert cached.mean_delay == inline.mean_delay
        manifest = RunStore(tmp_path / "s").list_runs()[0]
        assert manifest["command"] == "delay"
        assert manifest["stats"]["cache_hits"] == 3

    def test_convergence_shares_sweep_cache(self, tmp_path):
        from repro.experiments.convergence import windowed_slopes

        store_dir = tmp_path / "s"
        sweep_capacity(PARAMS, [100, 200, 400], scheme="A", trials=1, seed=0,
                       store=store_dir)
        study = windowed_slopes(PARAMS, [100, 200, 400], scheme="A", window=2,
                                trials=1, seed=0, store=store_dir)
        # every trial of the study was journaled by the sweep
        runs = RunStore(store_dir).list_runs()
        manifest = next(run for run in runs if run["command"] == "convergence")
        assert manifest["stats"]["cache_hits"] == 3
        assert study.window_slopes.shape[0] == 2
