"""Lifecycle tests for the shared-memory trial state (``parallel/shm``).

The hazard with ``multiprocessing.shared_memory`` is not correctness but
hygiene: a ``/dev/shm`` segment outlives the process that created it, so a
leak survives until reboot.  These tests pin down the ownership protocol:

- the parent creates blocks, workers map them **read-only** (an attempted
  write raises, it cannot corrupt sibling trials);
- a worker exiting -- cleanly or via SIGKILL -- never unlinks the parent's
  live segment;
- the parent unlinks exactly once however the sweep ends: clean success,
  kill-injected worker crashes (``FaultPlan``), and a SIGTERM arriving
  mid-sweep (converted by :func:`repro.resilience.drain.interruptible`
  into the ``KeyboardInterrupt`` drain path).
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.parallel import SharedArrayHandle, TrialRunner, share_arrays
from repro.parallel.shm import SharedArrays, close_attachments
from repro.resilience import FaultPlan, RetryPolicy

#: All segments created by this module carry this prefix, so leak checks
#: scan /dev/shm without being confused by other tenants.
PREFIX = "reproshmtest"


def _segments(prefix=PREFIX):
    try:
        return sorted(
            name for name in os.listdir("/dev/shm") if name.startswith(prefix)
        )
    except FileNotFoundError:  # non-Linux: no scanning, tests still pass
        return []


@pytest.fixture(autouse=True)
def _no_leaks_across_tests():
    before = _segments()
    yield
    close_attachments()
    assert _segments() == before, "test leaked /dev/shm segments"


def _sum_trial(rng, payload):
    """Open the handle and reduce it (module-level so it pickles)."""
    handle, scale = payload
    return float(handle.open().sum()) * scale


def _write_trial(rng, payload):
    """Attempt an in-place write through the mapped block."""
    view = payload.open()
    try:
        view[0, 0] = -1.0
    except ValueError:
        return "read-only"
    return "writable"


class TestHandleMapping:
    def test_worker_views_are_read_only(self):
        data = np.arange(20, dtype=float).reshape(10, 2)
        with share_arrays(PREFIX, positions=data) as shared:
            handle = shared.handle("positions")
            runner = TrialRunner(_write_trial, workers=2)
            outcomes = runner.run_values([handle] * 4)
            assert outcomes == ["read-only"] * 4
            # ... and nothing scribbled on the parent's copy
            np.testing.assert_array_equal(shared.array("positions"), data)

    def test_handle_is_constant_size_and_zero_copy(self):
        data = np.random.default_rng(0).random((50_000, 2))
        with share_arrays(PREFIX, positions=data) as shared:
            handle = shared.handle("positions")
            import pickle

            assert len(pickle.dumps(handle)) < 300  # vs ~800 kB for the array
            view = handle.open()
            np.testing.assert_array_equal(view, data)
            assert not view.flags.writeable
            # owner writes are visible through the mapping: same memory
            shared.array("positions")[0, 0] = 0.25
            assert view[0, 0] == 0.25

    def test_duplicate_share_name_rejected(self):
        with share_arrays(PREFIX, a=np.zeros(3)) as shared:
            with pytest.raises(ValueError):
                shared.share("a", np.zeros(3))


class TestUnlinkOnEveryExitPath:
    def test_clean_parallel_run_leaves_no_segments(self):
        data = np.arange(12, dtype=float).reshape(6, 2)
        shared = share_arrays(PREFIX, positions=data)
        handle = shared.handle("positions")
        runner = TrialRunner(_sum_trial, workers=2)
        values = runner.run_values(
            [(handle, k) for k in range(5)], shared=shared
        )
        assert values == [data.sum() * k for k in range(5)]
        assert _segments() == []

    def test_kill_injected_crashes_still_unlink(self):
        """Workers SIGKILLed mid-trial break the pool; retries heal the
        sweep and the parent still owns -- and unlinks -- the block."""
        data = np.ones((8, 2))
        shared = share_arrays(PREFIX, positions=data)
        handle = shared.handle("positions")
        runner = TrialRunner(
            _sum_trial,
            workers=2,
            retry_policy=RetryPolicy(max_attempts=3),
            fault_plan=FaultPlan.parse("kill@0,kill@2"),
        )
        results = runner.run(
            [(handle, k) for k in range(4)], shared=shared
        )
        assert all(result.ok for result in results)
        assert [result.value for result in results] == [
            16.0 * k for k in range(4)
        ]
        assert _segments() == []

    def test_unrecoverable_crash_still_unlinks(self):
        """Even when retries are exhausted and the sweep reports failures,
        the finally-unlink runs."""
        shared = share_arrays(PREFIX, positions=np.ones((4, 2)))
        handle = shared.handle("positions")
        runner = TrialRunner(
            _sum_trial,
            workers=2,
            retry_policy=RetryPolicy(max_attempts=1),
            fault_plan=FaultPlan.parse("kill@0"),
        )
        results = runner.run([(handle, 1)], shared=shared)
        assert not results[0].ok
        assert results[0].error.kind == "worker-crash"
        assert _segments() == []

    def test_registry_context_manager_is_exception_safe(self):
        with pytest.raises(RuntimeError):
            with share_arrays(PREFIX, positions=np.zeros((3, 2))):
                assert len(_segments()) == 1
                raise RuntimeError("sweep blew up before the runner")
        assert _segments() == []

    def test_partial_share_failure_rolls_back(self):
        jagged = [[1.0], [1.0, 2.0]]  # not coercible to an ndarray
        with pytest.raises(ValueError):
            share_arrays(PREFIX, good=np.zeros(4), bad=jagged)
        assert _segments() == []


_SIGTERM_SCRIPT = r"""
import numpy as np, sys, time
from repro.parallel import TrialRunner, share_arrays
from repro.resilience.drain import interruptible, SweepInterrupted
from tests.test_shm_lifecycle import PREFIX

def slow_trial(rng, payload):
    handle, _ = payload
    total = float(handle.open().sum())
    # long enough for the parent to SIGTERM mid-flight, short enough that
    # interpreter exit (which joins the forked workers) stays fast
    time.sleep(6.0)
    return total

shared = share_arrays(PREFIX, positions=np.ones((16, 2)))
handle = shared.handle("positions")
runner = TrialRunner(slow_trial, workers=2)
print("READY", flush=True)
try:
    with interruptible():
        runner.run([(handle, k) for k in range(2)], shared=shared)
except KeyboardInterrupt:
    print("DRAINED", flush=True)
    sys.exit(0)
print("UNREACHED", flush=True)
sys.exit(1)
"""


class TestSigtermDrain:
    def test_sigterm_interrupted_sweep_unlinks(self, tmp_path):
        """SIGTERM mid-sweep takes the interruptible -> KeyboardInterrupt
        drain path straight through the runner's finally-unlink."""
        script = tmp_path / "sigterm_sweep.py"
        script.write_text(_SIGTERM_SCRIPT)
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(root, "src"), root, env.get("PYTHONPATH", "")]
        )
        child = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            assert child.stdout.readline().strip() == "READY"
            # give the sweep a moment to share the block and enter the pool
            deadline = time.monotonic() + 10.0
            while not _segments() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert _segments(), "sweep never created its shared block"
            time.sleep(1.0)  # let the trials reach their in-worker sleep
            child.send_signal(signal.SIGTERM)
            out, _ = child.communicate(timeout=60)
        finally:
            if child.poll() is None:
                child.kill()
                child.communicate()
        assert "DRAINED" in out
        assert child.returncode == 0
        assert _segments() == []
