"""Run the package's embedded doctests (usage examples in docstrings)."""

import doctest

import pytest

import repro.core.order
import repro.geometry.torus
import repro.utils.tables

MODULES = [
    repro.core.order,
    repro.geometry.torus,
    repro.utils.tables,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, raise_on_error=False, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests collected from {module.__name__}"
