"""Unit tests for the SINR physical interference model (extension)."""

import math

import numpy as np
import pytest

from repro.wireless.physical_model import GreedySINRScheduler, PhysicalModel
from repro.wireless.scheduler import GreedyMatchingScheduler


class TestModelBasics:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PhysicalModel(path_loss_exponent=2.0)
        with pytest.raises(ValueError):
            PhysicalModel(sinr_threshold=0.0)
        with pytest.raises(ValueError):
            PhysicalModel(tx_power=0.0)

    def test_gain_clamped_and_decaying(self):
        model = PhysicalModel(path_loss_exponent=4.0, near_field=1e-3)
        gains = model.gain(np.array([0.0, 1e-4, 0.1, 0.5]))
        # near-field clamp: finite and equal below the clamp distance
        assert gains[0] == gains[1] == pytest.approx(1e-3 ** -4)
        assert gains[2] == pytest.approx(0.1 ** -4)
        assert gains[3] == pytest.approx(0.5 ** -4)
        assert np.all(np.diff(gains) <= 0)

    def test_invalid_near_field(self):
        with pytest.raises(ValueError):
            PhysicalModel(near_field=0.0)
        with pytest.raises(ValueError):
            PhysicalModel(near_field=0.6)

    def test_max_range(self):
        model = PhysicalModel(
            path_loss_exponent=4.0, sinr_threshold=2.0,
            noise_power=1e-4, tx_power=1.0,
        )
        d = model.max_range()
        # at the max range the noise-limited SINR equals beta exactly
        sinr = model.tx_power * model.gain(np.array([d]))[0] / model.noise_power
        assert sinr == pytest.approx(2.0, rel=1e-6)


class TestFeasibility:
    def test_single_close_link_feasible(self):
        model = PhysicalModel()
        positions = np.array([[0.1, 0.1], [0.12, 0.1]])
        assert model.is_feasible_schedule(positions, [(0, 1)])

    def test_interference_breaks_link(self):
        model = PhysicalModel(sinr_threshold=2.0)
        # receiver 1 is equidistant from its transmitter 0 and interferer 2:
        # SINR = 1 < beta
        positions = np.array([[0.10, 0.1], [0.15, 0.1], [0.20, 0.1], [0.5, 0.5]])
        assert not model.is_feasible_schedule(positions, [(0, 1), (2, 3)])

    def test_distant_links_feasible(self):
        model = PhysicalModel(noise_power=1e-6)
        positions = np.array(
            [[0.10, 0.1], [0.11, 0.1], [0.60, 0.6], [0.61, 0.6]]
        )
        assert model.is_feasible_schedule(positions, [(0, 1), (2, 3)])

    def test_node_reuse_infeasible(self):
        model = PhysicalModel()
        positions = np.array([[0.1, 0.1], [0.12, 0.1], [0.14, 0.1]])
        assert not model.is_feasible_schedule(positions, [(0, 1), (1, 2)])

    def test_sinr_values_ordering(self):
        model = PhysicalModel()
        positions = np.array(
            [[0.1, 0.1], [0.11, 0.1], [0.4, 0.4], [0.45, 0.4]]
        )
        sinrs = model.link_sinrs(positions, [(0, 1), (2, 3)])
        assert sinrs.shape == (2,)
        assert sinrs[0] > sinrs[1]  # shorter link decodes better


class TestGreedySINRScheduler:
    def test_schedule_is_sinr_feasible(self, rng):
        model = PhysicalModel(sinr_threshold=2.0, noise_power=1e-5)
        scheduler = GreedySINRScheduler(0.06, model)
        positions = rng.random((150, 2))
        schedule = scheduler.schedule(positions)
        assert len(schedule) > 0
        assert model.is_feasible_schedule(positions, schedule.pairs)

    def test_pairs_node_disjoint(self, rng):
        scheduler = GreedySINRScheduler(0.08)
        positions = rng.random((100, 2))
        nodes = [n for pair in scheduler.schedule(positions).pairs for n in pair]
        assert len(nodes) == len(set(nodes))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            GreedySINRScheduler(0.0)

    def test_higher_threshold_schedules_fewer(self, rng):
        positions = rng.random((200, 2))
        lenient = GreedySINRScheduler(
            0.05, PhysicalModel(sinr_threshold=1.5)
        ).schedule(positions)
        strict = GreedySINRScheduler(
            0.05, PhysicalModel(sinr_threshold=20.0)
        ).schedule(positions)
        assert len(strict) <= len(lenient)

    def test_concurrency_scales_like_protocol_model(self):
        """The protocol-model equivalence: concurrency under both models
        grows at the same order as n (Theta(n) at range c/sqrt(n))."""
        counts = {"protocol": [], "physical": []}
        for n in (200, 800):
            r = 0.5 / math.sqrt(n)
            positions = np.random.default_rng(n).random((n, 2))
            protocol = GreedyMatchingScheduler(r, delta=1.0).schedule(positions)
            physical = GreedySINRScheduler(
                r, PhysicalModel(sinr_threshold=3.0, noise_power=1e-9)
            ).schedule(positions)
            counts["protocol"].append(len(protocol))
            counts["physical"].append(len(physical))
        for kind in counts:
            growth = counts[kind][1] / max(counts[kind][0], 1)
            assert 2.0 < growth < 8.0  # ~4x for 4x nodes
