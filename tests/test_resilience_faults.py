"""Integration tests: deterministic fault injection through the runner.

Each :class:`FaultPlan` kind must surface as its documented failure mode
(raise -> exception, hang -> timeout, kill -> worker-crash, nan ->
invalid_result, io -> degraded durability), be healed by the retry policy
when the fault covers only the first attempt, and leave a faithful
telemetry trace -- and a crash storm must degrade to inline serial
execution with the repeat-offender payloads quarantined, never hang.
"""

import os
import signal

import pytest

from repro.observability import (
    DegradedToSerial,
    FaultInjected,
    PoolRebuilt,
    RecordingTelemetry,
    TrialRetried,
)
from repro.parallel import TrialRunner
from repro.resilience import (
    FaultPlan,
    RetryPolicy,
    SweepInterrupted,
    interruptible,
    validate_rate,
)
from repro.store import RunStore
from repro.store.keys import TrialSeed, trial_key


def _value_trial(rng, payload):
    return payload


class TestInjectedRaise:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_default_single_attempt_fault_is_healed_by_retry(self, workers):
        sink = RecordingTelemetry()
        runner = TrialRunner(
            _value_trial,
            workers=workers,
            telemetry=sink,
            fault_plan=FaultPlan.parse("raise@0"),
        )
        results = runner.run([10.0, 20.0], seed=0)
        assert [r.value for r in results] == [10.0, 20.0]
        assert results[0].attempts == 2
        assert results[1].attempts == 1
        faults = sink.of_type(FaultInjected)
        assert [(e.index, e.attempt, e.kind) for e in faults] == [(0, 1, "raise")]
        retried = sink.of_type(TrialRetried)
        assert [(e.index, e.kind) for e in retried] == [(0, "exception")]

    def test_persistent_fault_exhausts_attempts(self):
        runner = TrialRunner(
            _value_trial,
            fault_plan=FaultPlan.parse("raise@0x99"),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        results = runner.run([1.0], seed=0)
        assert not results[0].ok
        assert results[0].error.kind == "exception"
        assert results[0].error.attempts == 3
        assert "injected fault" in results[0].error.message


class TestInjectedNan:
    def test_nan_fault_with_validator_heals_on_retry(self):
        runner = TrialRunner(
            _value_trial,
            validator=validate_rate,
            fault_plan=FaultPlan.parse("nan@0"),
        )
        results = runner.run([3.5], seed=0)
        assert results[0].ok
        assert results[0].value == 3.5
        assert results[0].attempts == 2

    def test_persistent_nan_surfaces_invalid_result(self):
        runner = TrialRunner(
            _value_trial,
            validator=validate_rate,
            fault_plan=FaultPlan.parse("nan@0x99"),
        )
        results = runner.run([3.5], seed=0)
        assert not results[0].ok
        assert results[0].error.kind == "invalid_result"
        assert "NaN" in results[0].error.message

    def test_validator_rejects_negative_throughput(self):
        results = TrialRunner(_value_trial, validator=validate_rate).run(
            [-1.0], seed=0
        )
        assert not results[0].ok
        assert results[0].error.kind == "invalid_result"
        assert "negative" in results[0].error.message
        # validation failures are retryable (attempts exhausted)
        assert results[0].error.attempts == 2


class TestInjectedKill:
    def test_kill_fault_healed_on_rebuilt_pool(self):
        sink = RecordingTelemetry()
        runner = TrialRunner(
            _value_trial,
            workers=2,
            telemetry=sink,
            fault_plan=FaultPlan.parse("kill@0"),
        )
        results = runner.run([1.0, 2.0, 3.0, 4.0], seed=0)
        assert all(r.ok for r in results)
        assert [r.value for r in results] == [1.0, 2.0, 3.0, 4.0]
        assert runner.last_stats.pool_rebuilds >= 1
        rebuilt = sink.of_type(PoolRebuilt)
        assert rebuilt and rebuilt[0].rebuilds == 1
        kinds = {e.kind for e in sink.of_type(FaultInjected)}
        assert kinds == {"kill"}

    def test_kill_downgrades_to_raise_inline(self):
        sink = RecordingTelemetry()
        runner = TrialRunner(
            _value_trial,
            workers=None,
            telemetry=sink,
            fault_plan=FaultPlan.parse("kill@0"),
        )
        results = runner.run([1.0], seed=0)
        assert results[0].ok
        assert results[0].attempts == 2
        # the emitted fault is the *effective* kind
        assert [e.kind for e in sink.of_type(FaultInjected)] == ["raise"]


class TestInjectedHang:
    def test_hang_fault_surfaces_as_timeout(self):
        runner = TrialRunner(
            _value_trial,
            workers=2,
            timeout=0.3,
            fault_plan=FaultPlan.parse("hang@0x99"),
            retry_policy=RetryPolicy.from_retries(0),
        )
        results = runner.run([1.0, 2.0], seed=0)
        assert not results[0].ok
        assert results[0].error.kind == "timeout"
        assert results[1].ok

    def test_hang_fault_requires_timeout(self):
        with pytest.raises(ValueError, match="hang faults require a timeout"):
            TrialRunner(_value_trial, fault_plan=FaultPlan.parse("hang@0"))


class TestInjectedJournalIO:
    def test_io_fault_keeps_the_value_but_skips_the_journal(self, tmp_path):
        store = RunStore(tmp_path / "store")
        keys = [
            trial_key({"p": 1}, "A", 100, TrialSeed(0, index))
            for index in range(2)
        ]
        sink = RecordingTelemetry()
        runner = TrialRunner(
            _value_trial,
            telemetry=sink,
            fault_plan=FaultPlan.parse("io@0"),
        )
        results = runner.run([1.0, 2.0], seed=0, cache=store, keys=keys)
        # both values survive in memory...
        assert [r.value for r in results] == [1.0, 2.0]
        assert all(r.ok for r in results)
        # ...but only the unfaulted trial reached the journal
        store.reload()
        assert store.get(keys[0]) is None
        assert store.get(keys[1]) is not None
        assert [e.kind for e in sink.of_type(FaultInjected)] == ["io"]


class TestCrashStormDegradation:
    def test_repeat_crasher_quarantined_and_rest_run_inline(self):
        """Deterministic storm: workers=1, chunk_size=1 -> exactly one trial
        in flight per pool, so crash attribution is exact.

        ``kill@0-1x99`` makes trials 0 and 1 kill their worker on every
        attempt.  Submission order 0,1,2,3 with requeue-at-the-back gives
        trial 0 a second crash (quarantine threshold) on the third rebuild
        (the storm threshold); trial 1, still below the threshold, continues
        inline where the kill downgrades to raise and exhausts its attempts.
        """
        sink = RecordingTelemetry()
        runner = TrialRunner(
            _value_trial,
            workers=1,
            chunk_size=1,
            telemetry=sink,
            fault_plan=FaultPlan.parse("kill@0-1x99"),
            retry_policy=RetryPolicy(max_attempts=10),
            max_rebuilds=3,
            rebuild_window_seconds=3600.0,
        )
        results = runner.run([0.5, 1.5, 2.5, 3.5], seed=0)
        assert runner.last_stats.degraded
        assert runner.last_stats.pool_rebuilds == 3
        assert not results[0].ok
        assert results[0].error.kind == "quarantined"
        assert "crash storm" in results[0].error.message
        assert not results[1].ok
        assert results[1].error.kind == "exception"  # inline kill -> raise
        assert results[1].error.attempts == 10
        assert results[2].ok and results[2].value == 2.5
        assert results[3].ok and results[3].value == 3.5
        degraded = sink.of_type(DegradedToSerial)
        assert len(degraded) == 1
        assert degraded[0].rebuilds == 3
        assert degraded[0].quarantined == (0,)
        assert len(sink.of_type(PoolRebuilt)) == 3

    def test_everything_crashing_still_terminates(self):
        """A storm where every payload kills its worker must end with
        structured errors, never a hung sweep."""
        sink = RecordingTelemetry()
        runner = TrialRunner(
            _value_trial,
            workers=2,
            telemetry=sink,
            fault_plan=FaultPlan.parse("kill@*x99"),
            retry_policy=RetryPolicy(max_attempts=6),
            max_rebuilds=3,
            rebuild_window_seconds=3600.0,
        )
        results = runner.run([1.0, 2.0, 3.0], seed=0)
        assert all(not r.ok for r in results)
        assert all(
            r.error.kind in {"quarantined", "exception", "worker-crash"}
            for r in results
        )
        assert runner.last_stats.degraded
        assert sink.of_type(DegradedToSerial)


class TestGracefulDrain:
    def test_interruptible_converts_sigterm(self):
        with pytest.raises(SweepInterrupted):
            with interruptible():
                os.kill(os.getpid(), signal.SIGTERM)

    def test_sweep_interrupted_is_a_keyboard_interrupt(self):
        assert issubclass(SweepInterrupted, KeyboardInterrupt)

    def test_handlers_restored_after_the_block(self):
        before = signal.getsignal(signal.SIGTERM)
        with interruptible():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before
