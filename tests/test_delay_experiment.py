"""Unit tests for the delay-comparison experiment driver."""

import numpy as np
import pytest

from repro.experiments.delay import DelayComparison, compare_delays


class TestCompareDelays:
    @pytest.fixture(scope="class")
    def comparison(self):
        # small and short: this is a smoke-level correctness check; the
        # full-size comparison lives in benchmarks/test_delay.py
        return compare_delays(80, seed=1, slots=800, arrival_prob=0.01)

    def test_all_three_schemes_present(self, comparison):
        assert set(comparison.mean_delay) == {"scheme-A", "two-hop", "scheme-B"}

    def test_some_delivery_everywhere(self, comparison):
        for scheme, count in comparison.delivered.items():
            assert count > 0, scheme

    def test_two_hop_bounded_hops(self, comparison):
        assert comparison.mean_hops["two-hop"] <= 2.0

    def test_lines_render(self, comparison):
        lines = comparison.lines()
        assert len(lines) == 3
        assert all("delay=" in line for line in lines)

    def test_delays_non_negative(self, comparison):
        for scheme, delay in comparison.mean_delay.items():
            assert delay >= 0 or np.isnan(delay), scheme
