"""Fault injection for :class:`repro.parallel.TrialRunner`.

Each failure mode documented by the runner -- a trial that raises, a worker
killed mid-trial, a per-trial timeout -- must produce the structured
:class:`TrialError` (after exactly one retry) instead of hanging the pool,
and a transient fault must be healed by the retry.
"""

import os
import signal
import time

import pytest

from repro.parallel import TrialError, TrialFailed, TrialRunner, run_trials


def _ok_trial(rng, payload):
    return payload


def _raising_trial(rng, payload):
    raise RuntimeError(f"injected failure {payload}")


def _flaky_trial(rng, payload):
    """Fails on the first attempt only, using a marker file as memory."""
    marker = payload
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempt 1")
        raise RuntimeError("transient failure")
    return "recovered"


def _kill_worker_trial(rng, payload):
    os.kill(os.getpid(), signal.SIGKILL)


def _kill_worker_once_trial(rng, payload):
    marker = payload
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempt 1")
        os.kill(os.getpid(), signal.SIGKILL)
    return "survived"


def _sleeping_trial(rng, payload):
    time.sleep(60)
    return "never"


class TestRaisingTrial:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_structured_error_after_one_retry(self, workers):
        runner = TrialRunner(_raising_trial, workers=workers)
        results = runner.run(["x"], seed=0)
        error = results[0].error
        assert isinstance(error, TrialError)
        assert error.kind == "exception"
        assert error.attempts == 2
        assert "injected failure x" in error.message
        assert "RuntimeError" in error.traceback
        assert runner.last_stats.failures == 1
        assert runner.last_stats.retries == 1

    def test_other_trials_still_complete(self):
        def_payloads = ["a", "b"]
        runner = TrialRunner(_raising_trial, workers=2)
        mixed = TrialRunner(_ok_trial, workers=2).run(def_payloads, seed=0)
        assert [r.value for r in mixed] == def_payloads
        results = runner.run(def_payloads, seed=0)
        assert all(not r.ok for r in results)
        assert sorted(r.index for r in results) == [0, 1]

    def test_run_values_raises_trial_failed(self):
        with pytest.raises(TrialFailed) as excinfo:
            run_trials(_raising_trial, ["boom"], workers=2)
        assert excinfo.value.error.kind == "exception"

    def test_retry_heals_transient_failure(self, tmp_path):
        marker = str(tmp_path / "flaky-marker")
        results = TrialRunner(_flaky_trial, workers=2).run([marker], seed=0)
        assert results[0].ok
        assert results[0].value == "recovered"
        assert results[0].attempts == 2


class TestKilledWorker:
    def test_structured_error_after_one_retry(self):
        runner = TrialRunner(_kill_worker_trial, workers=2)
        start = time.monotonic()
        results = runner.run([None], seed=0)
        elapsed = time.monotonic() - start
        error = results[0].error
        assert error is not None
        assert error.kind == "worker-crash"
        assert error.attempts == 2
        assert elapsed < 60, "broken pool must not hang"

    def test_pool_recovers_for_innocent_trials(self, tmp_path):
        """A crash-once trial is re-queued onto a rebuilt pool and succeeds."""
        marker = str(tmp_path / "kill-marker")
        results = TrialRunner(_kill_worker_once_trial, workers=1).run(
            [marker], seed=0
        )
        assert results[0].ok
        assert results[0].value == "survived"
        assert results[0].attempts == 2

    def test_runner_usable_after_crash(self):
        runner = TrialRunner(_kill_worker_trial, workers=1)
        runner.run([None], seed=0)
        healthy = TrialRunner(_ok_trial, workers=1).run([1, 2], seed=0)
        assert [r.value for r in healthy] == [1, 2]


class TestTimeout:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_structured_error_after_one_retry(self, workers):
        runner = TrialRunner(_sleeping_trial, workers=workers, timeout=0.3)
        start = time.monotonic()
        results = runner.run([None], seed=0)
        elapsed = time.monotonic() - start
        error = results[0].error
        assert error is not None
        assert error.kind == "timeout"
        assert error.attempts == 2
        # two attempts at ~0.3 s each, far below the 60 s sleep
        assert elapsed < 30

    def test_fast_trial_unaffected_by_timeout(self):
        results = TrialRunner(_ok_trial, workers=2, timeout=30.0).run(
            ["quick"], seed=0
        )
        assert results[0].ok
        assert results[0].value == "quick"
        assert results[0].attempts == 1
