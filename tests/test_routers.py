"""Unit tests for the per-scheme packet routers."""

import numpy as np
import pytest

from repro.geometry.tessellation import SquareTessellation
from repro.infrastructure.backbone import Backbone
from repro.mobility.processes import IIDAroundHome
from repro.mobility.shapes import UniformDiskShape
from repro.simulation.engine import Packet, SlottedSimulator
from repro.simulation.routers import (
    SchemeARouter,
    SchemeBRouter,
    TwoHopRelayRouter,
)
from repro.simulation.traffic import PermutationTraffic, permutation_traffic
from repro.wireless.scheduler import PolicySStar


def make_packet(source=0, destination=1, holder=None):
    return Packet(
        pid=0,
        source=source,
        destination=destination,
        created_slot=0,
        holder=source if holder is None else holder,
    )


class TestSchemeARouter:
    def _router(self, rng, n=50, side=4):
        tess = SquareTessellation(side)
        homes = rng.random((n, 2))
        return SchemeARouter(tess, tess.cell_of(homes)), tess, homes

    def test_plan_created(self, rng):
        router, tess, homes = self._router(rng)
        packet = make_packet(0, 10)
        router.on_packet_created(packet)
        assert packet.state["route"][0] == tess.cell_of(homes[0:1])[0]
        assert packet.state["route"][-1] == tess.cell_of(homes[10:11])[0]
        assert packet.state["index"] == 0

    def test_select_prefers_destination(self, rng):
        router, _, _ = self._router(rng)
        packet = make_packet(0, 10)
        router.on_packet_created(packet)
        assert router.select_transfer([packet], 0, 10) is packet

    def test_select_next_cell_relay(self, rng):
        router, tess, homes = self._router(rng)
        cells = tess.cell_of(homes)
        packet = make_packet(0, 10)
        router.on_packet_created(packet)
        route = packet.state["route"]
        if len(route) > 1:
            relays = [i for i in range(50) if cells[i] == route[1] and i != 10]
            if relays:
                assert router.select_transfer([packet], 0, relays[0]) is packet

    def test_rejects_wrong_cell_peer(self, rng):
        router, tess, homes = self._router(rng)
        cells = tess.cell_of(homes)
        packet = make_packet(0, 10)
        router.on_packet_created(packet)
        route = packet.state["route"]
        if len(route) > 1:
            wrong = [
                i
                for i in range(50)
                if cells[i] not in (route[1],) and i != 10
            ]
            assert router.select_transfer([packet], 0, wrong[0]) is None

    def test_bs_ignored(self, rng):
        router, _, _ = self._router(rng, n=50)
        packet = make_packet(0, 10)
        router.on_packet_created(packet)
        assert router.select_transfer([packet], 0, 55) is None  # index >= n

    def test_transfer_advances_index(self, rng):
        router, tess, homes = self._router(rng)
        cells = tess.cell_of(homes)
        packet = make_packet(0, 10)
        router.on_packet_created(packet)
        route = packet.state["route"]
        if len(route) > 1:
            relay = next(
                i for i in range(50) if cells[i] == route[1] and i != 10
            )
            router.on_transfer(packet, 0, relay)
            assert packet.state["index"] == 1


class TestTwoHopRouter:
    def test_delivers_to_destination(self):
        router = TwoHopRelayRouter(ms_count=10)
        packet = make_packet(0, 3)
        assert router.select_transfer([packet], 0, 3) is packet

    def test_source_relays_fresh_packet(self):
        router = TwoHopRelayRouter(ms_count=10)
        packet = make_packet(0, 3)
        assert router.select_transfer([packet], 0, 5) is packet

    def test_relay_holds_until_destination(self):
        router = TwoHopRelayRouter(ms_count=10)
        packet = make_packet(0, 3, holder=5)
        packet.hops = 1
        assert router.select_transfer([packet], 5, 7) is None
        assert router.select_transfer([packet], 5, 3) is packet

    def test_bs_ignored(self):
        router = TwoHopRelayRouter(ms_count=10)
        packet = make_packet(0, 3)
        assert router.select_transfer([packet], 0, 12) is None

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            TwoHopRelayRouter(ms_count=1)

    def test_end_to_end_two_hop(self, rng):
        """Grossglauser-Tse style delivery through the real engine."""
        n = 80
        homes = rng.random((n, 2))
        process = IIDAroundHome(homes, UniformDiskShape(1.0), 1.0, rng)  # full roam
        scheduler = PolicySStar(node_count=n, c_t=0.4, delta=0.5)
        traffic = permutation_traffic(rng, n)
        sim = SlottedSimulator(
            process, scheduler, TwoHopRelayRouter(n), traffic, 0.05, rng
        )
        metrics = sim.run(400)
        assert metrics.delivered > 0
        assert np.all(metrics.hop_counts <= 2)


class TestSchemeBRouter:
    def _setup(self, rng, n=30, k=6, zones=2):
        ms_zone = rng.integers(0, zones, n)
        bs_zone = np.tile(np.arange(zones), k // zones)
        backbone = Backbone(k, edge_capacity=1.0)
        router = SchemeBRouter(ms_zone, bs_zone, backbone, rng)
        return router, ms_zone, bs_zone

    def test_uplink_same_zone_only(self, rng):
        router, ms_zone, bs_zone = self._setup(rng)
        source = 0
        packet = make_packet(source, 5)
        same_zone_bs = int(np.nonzero(bs_zone == ms_zone[source])[0][0])
        other_zone_bs = int(np.nonzero(bs_zone != ms_zone[source])[0][0])
        assert router.select_transfer([packet], source, 30 + same_zone_bs) is packet
        assert router.select_transfer([packet], source, 30 + other_zone_bs) is None

    def test_direct_delivery_allowed(self, rng):
        router, _, _ = self._setup(rng)
        packet = make_packet(0, 5)
        assert router.select_transfer([packet], 0, 5) is packet

    def test_downlink_only_in_destination_zone(self, rng):
        router, ms_zone, bs_zone = self._setup(rng)
        dest = 5
        packet = make_packet(0, dest)
        right_bs = int(np.nonzero(bs_zone == ms_zone[dest])[0][0])
        wrong_bs = int(np.nonzero(bs_zone != ms_zone[dest])[0][0])
        packet.holder = 30 + right_bs
        assert router.select_transfer([packet], 30 + right_bs, dest) is packet
        packet.holder = 30 + wrong_bs
        assert router.select_transfer([packet], 30 + wrong_bs, dest) is None

    def test_no_bs_to_bs_wireless(self, rng):
        router, _, _ = self._setup(rng)
        packet = make_packet(0, 5, holder=30)
        assert router.select_transfer([packet], 30, 31) is None

    def test_wired_step_moves_toward_destination_zone(self, rng):
        router, ms_zone, bs_zone = self._setup(rng)
        dest = 5
        # a packet parked on a BS in the wrong zone
        wrong_bs = int(np.nonzero(bs_zone != ms_zone[dest])[0][0])
        packet = make_packet(0, dest, holder=30 + wrong_bs)
        queues = {node: [] for node in range(30 + 6)}
        queues[30 + wrong_bs].append(packet)
        router.wired_step(queues, slot=0)
        new_bs = packet.holder - 30
        assert bs_zone[new_bs] == ms_zone[dest]

    def test_wired_step_respects_capacity(self, rng):
        """With c = 0.5 a wire can move one packet only every 2 slots."""
        ms_zone = np.array([0, 1])
        bs_zone = np.array([0, 1])
        backbone = Backbone(2, edge_capacity=0.5)
        router = SchemeBRouter(ms_zone, bs_zone, backbone, rng)
        packets = [make_packet(0, 1, holder=2) for _ in range(4)]
        queues = {0: [], 1: [], 2: list(packets), 3: []}
        moved = []
        for slot in range(8):
            router.wired_step(queues, slot)
            moved.append(len(queues[3]))
        assert moved[-1] == 4
        # never more than ~c per slot on sustained average
        assert moved[1] <= 2
