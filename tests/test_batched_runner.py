"""Batched trial execution: plan grouping and ``TrialRunner.run_batched``.

The contract under test: batching is an execution detail.  Every member
trial receives the same full-count-spawned ``SeedSequence`` a serial
:meth:`TrialRunner.run` would hand it, so per-trial values are identical;
a batch is the unit of retry and failure, scattered per member.
"""

import numpy as np
import pytest

from repro.parallel import BatchedTrialPlan, TrialBatch, TrialRunner


def _trial(rng, payload):
    return float(rng.random()) + float(payload["offset"])


def _batch(seed_seqs, members):
    return [
        _trial(np.random.default_rng(seq), payload)
        for seq, payload in zip(seed_seqs, members)
    ]


def _batch_short(seed_seqs, members):
    return _batch(seed_seqs, members)[:-1] if len(members) > 1 else [None]


def _batch_boom(seed_seqs, members):
    raise RuntimeError("flow kernel exploded")


def payloads_for(offsets):
    return [{"offset": offset} for offset in offsets]


def shape_key(payload):
    return payload["offset"] if payload["offset"] >= 0 else None


class TestBatchedTrialPlan:
    def test_groups_and_chunks(self):
        plan = BatchedTrialPlan.group(
            payloads_for([1, 1, 1, 1, 1]), shape_key, batch_trials=2
        )
        assert [batch.width for batch in plan.batches] == [2, 2, 1]
        assert plan.trial_count == 5
        assert plan.max_width == 2
        assert plan.covers(5)
        assert not plan.covers(6)

    def test_interleaved_keys_keep_trial_order_within_batches(self):
        plan = BatchedTrialPlan.group(
            payloads_for([1, 2, 1, 2, 1]), shape_key, batch_trials=8
        )
        assert {batch.shape_key: batch.indices for batch in plan.batches} == {
            1: (0, 2, 4),
            2: (1, 3),
        }
        # batches are ordered by their first member index
        assert [batch.shape_key for batch in plan.batches] == [1, 2]

    def test_none_key_gets_singletons(self):
        plan = BatchedTrialPlan.group(
            payloads_for([-1, 3, -1, 3]), shape_key, batch_trials=4
        )
        widths = {batch.indices: batch.width for batch in plan.batches}
        assert widths == {(0,): 1, (2,): 1, (1, 3): 2}

    def test_rejects_nonpositive_batch_trials(self):
        with pytest.raises(ValueError, match="batch_trials"):
            BatchedTrialPlan.group([], shape_key, batch_trials=0)

    def test_empty_plan(self):
        plan = BatchedTrialPlan.group([], shape_key, batch_trials=3)
        assert plan.batches == ()
        assert plan.max_width == 0
        assert plan.covers(0)


class TestRunBatched:
    def run_both(self, offsets, batch_trials=3, seed=42, **kwargs):
        payloads = payloads_for(offsets)
        plan = BatchedTrialPlan.group(payloads, shape_key, batch_trials)
        serial = TrialRunner(_trial).run(payloads, seed=seed)
        batched = TrialRunner(_trial, **kwargs).run_batched(
            payloads, _batch, plan, seed=seed
        )
        return serial, batched

    def test_values_identical_to_serial_run(self):
        serial, batched = self.run_both([1, 2, 1, 2, 1, 1, 2])
        assert [r.value for r in batched] == [r.value for r in serial]
        assert all(r.ok for r in batched)
        assert [r.index for r in batched] == list(range(7))

    def test_unbatchable_singletons_still_match(self):
        serial, batched = self.run_both([-1, 5, -1, 5])
        assert [r.value for r in batched] == [r.value for r in serial]

    def test_plan_must_cover_payloads(self):
        payloads = payloads_for([1, 1, 1])
        plan = BatchedTrialPlan.group(payloads[:2], shape_key, 2)
        with pytest.raises(ValueError, match="partition"):
            TrialRunner(_trial).run_batched(payloads, _batch, plan)

    def test_plan_type_checked(self):
        with pytest.raises(TypeError, match="BatchedTrialPlan"):
            TrialRunner(_trial).run_batched(
                payloads_for([1]), _batch, plan=object()
            )

    def test_cache_hits_skip_the_batch(self):
        payloads = payloads_for([1, 1, 1, 1])
        plan = BatchedTrialPlan.group(payloads, shape_key, 4)
        runner = TrialRunner(_trial)
        fresh = runner.run_batched(payloads, _batch, plan, seed=7)

        class DictCache:
            def __init__(self):
                self.data = {}
                self.puts = []

            def get(self, key):
                return self.data.get(key)

            def put(self, key, value, duration):
                self.puts.append(key)

        class Hit:
            def __init__(self, value):
                self.value = value
                self.duration = 0.5

        cache = DictCache()
        cache.data["k1"] = Hit("cached-one")
        keys = ["k0", "k1", "k2", "k3"]
        mixed = runner.run_batched(payloads, _batch, plan, seed=7, cache=cache, keys=keys)
        assert mixed[1].cached and mixed[1].value == "cached-one"
        # the other members still get their full-count-spawned seeds
        for index in (0, 2, 3):
            assert mixed[index].value == fresh[index].value
            assert not mixed[index].cached
        # fresh member values were journaled individually
        assert sorted(cache.puts) == ["k0", "k2", "k3"]
        stats = runner.last_stats
        assert stats.trials == 4 and stats.cache_hits == 1

    def test_batch_failure_scatters_per_member(self):
        payloads = payloads_for([1, 1, 1])
        plan = BatchedTrialPlan.group(payloads, shape_key, 3)
        results = TrialRunner(_trial, retries=0).run_batched(
            payloads, _batch_boom, plan
        )
        assert all(not r.ok for r in results)
        for result in results:
            assert result.error.trial_index == result.index
            assert result.error.kind == "exception"
            assert "batch of 3:" in result.error.message
            assert "flow kernel exploded" in result.error.message
        assert TrialRunner(_trial).last_stats is None  # new instance untouched

    def test_wrong_length_return_is_invalid_result(self):
        payloads = payloads_for([1, 1])
        plan = BatchedTrialPlan.group(payloads, shape_key, 2)
        results = TrialRunner(_trial, retries=0).run_batched(
            payloads, _batch_short, plan
        )
        assert all(not r.ok for r in results)
        assert all(r.error.kind == "invalid_result" for r in results)
        assert "instead of 2 member value(s)" in results[0].error.message

    def test_validator_applies_per_member(self):
        payloads = payloads_for([1, 10, 1, 10])
        plan = BatchedTrialPlan.group(payloads, shape_key, 4)
        runner = TrialRunner(
            _trial,
            validator=lambda value: "too big" if value > 5 else None,
        )
        results = runner.run_batched(payloads, _batch, plan)
        assert [r.ok for r in results] == [True, False, True, False]
        assert results[1].error.kind == "invalid_result"
        assert results[1].error.message == "too big"
        assert runner.last_stats.failures == 2

    def test_durations_split_evenly(self):
        payloads = payloads_for([1, 1, 1])
        plan = BatchedTrialPlan.group(payloads, shape_key, 3)
        results = TrialRunner(_trial).run_batched(payloads, _batch, plan)
        durations = {r.duration for r in results}
        assert len(durations) == 1  # one batch, evenly split

    def test_empty_payloads(self):
        runner = TrialRunner(_trial)
        plan = BatchedTrialPlan.group([], shape_key, 2)
        assert runner.run_batched([], _batch, plan) == []
        assert runner.last_stats.trials == 0

    def test_worker_pool_matches_inline(self):
        payloads = payloads_for([1, 2, 1, 2, 1])
        plan = BatchedTrialPlan.group(payloads, shape_key, 2)
        inline = TrialRunner(_trial).run_batched(payloads, _batch, plan, seed=3)
        pooled = TrialRunner(_trial, workers=2).run_batched(
            payloads, _batch, plan, seed=3
        )
        assert [r.value for r in pooled] == [r.value for r in inline]
