"""Unit tests for the asymptotic order calculus."""

import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.order import Order, as_fraction, order_max, order_min, order_sum

exponents = st.fractions(
    min_value=Fraction(-3), max_value=Fraction(3), max_denominator=12
)


class TestAsFraction:
    def test_int(self):
        assert as_fraction(2) == Fraction(2)

    def test_decimal_float_snaps_to_small_rational(self):
        assert as_fraction(0.1) == Fraction(1, 10)
        assert as_fraction(0.25) == Fraction(1, 4)

    def test_string(self):
        assert as_fraction("3/8") == Fraction(3, 8)

    def test_fraction_passthrough(self):
        assert as_fraction(Fraction(5, 7)) == Fraction(5, 7)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(True)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            as_fraction([1])


class TestConstructors:
    def test_one(self):
        assert Order.one() == Order(0, 0)

    def test_poly(self):
        assert Order.poly("1/2").poly_exponent == Fraction(1, 2)

    def test_log(self):
        assert Order.log(2).log_exponent == Fraction(2)

    def test_immutable(self):
        order = Order(1)
        with pytest.raises(AttributeError):
            order._poly = Fraction(2)


class TestAlgebra:
    def test_multiplication_adds_exponents(self):
        assert Order(1, 1) * Order("1/2", -1) == Order("3/2", 0)

    def test_division_subtracts_exponents(self):
        assert Order(1) / Order("1/4", 1) == Order("3/4", -1)

    def test_addition_is_dominance(self):
        assert Order(1) + Order(2) == Order(2)
        assert Order(1, 5) + Order(2, -5) == Order(2, -5)

    def test_addition_log_breaks_tie(self):
        assert Order(1, 1) + Order(1, 0) == Order(1, 1)

    def test_power(self):
        assert Order(1, 2) ** Fraction(1, 2) == Order("1/2", 1)

    def test_sqrt(self):
        assert Order(-1, 1).sqrt() == Order("-1/2", "1/2")

    def test_reciprocal(self):
        assert Order("1/4", -1).reciprocal() == Order("-1/4", 1)

    def test_rtruediv_with_order(self):
        assert (Order(2) / Order(1)) == Order(1)


class TestComparisons:
    def test_poly_dominates_log(self):
        # n^0.01 grows faster than log^100 n
        assert Order("1/100") > Order(0, 100)

    def test_equality_and_hash(self):
        assert Order(1, 1) == Order(1, 1)
        assert hash(Order(1, 1)) == hash(Order(1, 1))
        assert Order(1, 1) != Order(1, 0)

    def test_ordering(self):
        assert Order(-1) < Order(0) < Order(1)
        assert Order(0, -1) < Order(0, 0) < Order(0, 1)


class TestLandau:
    def test_is_o_default_constant(self):
        assert Order("-1/8").is_o()
        assert not Order(0, 1).is_o()

    def test_is_omega_default_constant(self):
        assert Order(0, 1).is_omega()
        assert not Order(0, -1).is_omega()

    def test_is_O_and_Omega_include_equality(self):
        assert Order(1).is_O(Order(1))
        assert Order(1).is_Omega(Order(1))

    def test_is_theta(self):
        assert Order(1, -1).is_theta(Order(1, -1))
        assert not Order(1).is_theta(Order(1, 1))

    @given(a=exponents, b=exponents)
    def test_o_and_omega_are_mutually_exclusive(self, a, b):
        x, y = Order(a), Order(b)
        assert not (x.is_o(y) and x.is_omega(y))

    @given(a=exponents, b=exponents)
    def test_trichotomy(self, a, b):
        x, y = Order(a), Order(b)
        assert x.is_o(y) or x.is_omega(y) or x.is_theta(y)


class TestEvaluation:
    def test_pure_poly(self):
        assert Order("1/2").evaluate(100) == pytest.approx(10.0)

    def test_with_log(self):
        assert Order(1, 1).evaluate(math.e ** 2) == pytest.approx(
            2 * math.e ** 2
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Order(1).evaluate(0)

    def test_rejects_n_one_with_log(self):
        with pytest.raises(ValueError):
            Order(0, 1).evaluate(1)


class TestRendering:
    def test_pretty_constant(self):
        assert Order.one().pretty() == "1"

    def test_pretty_poly_and_log(self):
        assert Order("1/2", 1).pretty() == "n^1/2 log n"

    def test_str(self):
        assert str(Order(-1)) == "Theta(n^-1)"


class TestAggregates:
    def test_order_min(self):
        assert order_min(Order(1), Order(0), Order(2)) == Order(0)

    def test_order_max(self):
        assert order_max(Order(1), Order(0), Order(2)) == Order(2)

    def test_order_sum(self):
        assert order_sum([Order(-1), Order("-1/2")]) == Order("-1/2")

    def test_nested_iterables(self):
        assert order_min([Order(1), Order(2)], Order(0)) == Order(0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            order_min()

    @given(st.lists(exponents, min_size=1, max_size=6))
    def test_min_le_max(self, values):
        orders = [Order(v) for v in values]
        assert order_min(*orders) <= order_max(*orders)
