"""Unit tests for square tessellations and Manhattan cell routing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.tessellation import (
    SquareTessellation,
    tessellation_for_area,
    tessellation_for_cell_side,
)


class TestBasics:
    def test_counts_and_sizes(self):
        tess = SquareTessellation(4)
        assert tess.cell_count == 16
        assert tess.cell_side == pytest.approx(0.25)
        assert tess.cell_area == pytest.approx(1 / 16)

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            SquareTessellation(0)

    def test_cell_of_known_points(self):
        tess = SquareTessellation(2)
        # (x, y): col from x, row from y; flat = row * side + col
        assert tess.cell_of(np.array([[0.1, 0.1]]))[0] == 0
        assert tess.cell_of(np.array([[0.9, 0.1]]))[0] == 1
        assert tess.cell_of(np.array([[0.1, 0.9]]))[0] == 2
        assert tess.cell_of(np.array([[0.9, 0.9]]))[0] == 3

    def test_cell_of_wraps(self):
        tess = SquareTessellation(2)
        assert tess.cell_of(np.array([[1.1, -0.1]]))[0] == tess.cell_of(
            np.array([[0.1, 0.9]])
        )[0]

    def test_centers_land_in_their_cell(self):
        tess = SquareTessellation(5)
        centers = tess.centers()
        assert np.array_equal(tess.cell_of(centers), np.arange(25))

    def test_center_single(self):
        tess = SquareTessellation(2)
        assert np.allclose(tess.center(3), [0.75, 0.75])

    def test_rowcol_roundtrip(self):
        tess = SquareTessellation(7)
        for flat in range(tess.cell_count):
            row, col = tess.rowcol(flat)
            assert tess.flat_index(row, col) == flat


class TestOccupancy:
    def test_counts_sum_to_n(self, rng):
        tess = SquareTessellation(6)
        pts = rng.random((100, 2))
        assert tess.counts(pts).sum() == 100

    def test_counts_empty(self):
        tess = SquareTessellation(3)
        assert tess.counts(np.empty((0, 2))).sum() == 0

    def test_members_partition(self, rng):
        tess = SquareTessellation(4)
        pts = rng.random((60, 2))
        members = tess.members(pts)
        gathered = np.sort(np.concatenate(members))
        assert np.array_equal(gathered, np.arange(60))

    def test_members_agree_with_cell_of(self, rng):
        tess = SquareTessellation(4)
        pts = rng.random((40, 2))
        cells = tess.cell_of(pts)
        for cell, idx in enumerate(tess.members(pts)):
            assert np.all(cells[idx] == cell)


class TestNeighbors:
    def test_four_neighbors(self):
        tess = SquareTessellation(4)
        assert len(set(tess.neighbors(5))) == 4

    def test_wraparound_neighbors(self):
        tess = SquareTessellation(3)
        # corner cell 0 = (row 0, col 0)
        neighbors = set(tess.neighbors(0))
        assert tess.flat_index(2, 0) in neighbors  # wraps up
        assert tess.flat_index(0, 2) in neighbors  # wraps left


class TestManhattanRoute:
    def test_same_cell(self):
        tess = SquareTessellation(5)
        assert tess.manhattan_route(7, 7) == [7]

    def test_route_endpoints(self):
        tess = SquareTessellation(5)
        route = tess.manhattan_route(0, 18)
        assert route[0] == 0 and route[-1] == 18

    def test_route_is_contiguous(self):
        tess = SquareTessellation(6)
        route = tess.manhattan_route(1, 33)
        for a, b in zip(route, route[1:]):
            assert b in tess.neighbors(a)

    def test_route_no_immediate_repeats(self):
        tess = SquareTessellation(6)
        route = tess.manhattan_route(2, 29)
        assert all(a != b for a, b in zip(route, route[1:]))

    def test_takes_short_way_around(self):
        tess = SquareTessellation(10)
        # col 0 -> col 9 should wrap (1 hop), not go the long way (9 hops)
        route = tess.manhattan_route(tess.flat_index(0, 0), tess.flat_index(0, 9))
        assert len(route) == 2

    def test_horizontal_then_vertical(self):
        tess = SquareTessellation(8)
        start = tess.flat_index(1, 1)
        end = tess.flat_index(4, 5)
        route = tess.manhattan_route(start, end)
        rows = [tess.rowcol(c)[0] for c in route]
        # row stays constant until the corner, then changes monotonically
        first_change = next(i for i, r in enumerate(rows) if r != rows[0])
        assert all(r == rows[0] for r in rows[:first_change])

    @given(
        side=st.integers(2, 9),
        start=st.integers(0, 80),
        end=st.integers(0, 80),
    )
    def test_route_length_bounded(self, side, start, end):
        tess = SquareTessellation(side)
        start %= tess.cell_count
        end %= tess.cell_count
        route = tess.manhattan_route(start, end)
        # at most side/2 hops per axis (short way around) plus endpoints
        assert len(route) <= side + 1
        assert route[0] == start and route[-1] == end


class TestFactories:
    def test_for_area(self):
        tess = tessellation_for_area(0.01)
        assert tess.cell_area >= 0.01

    def test_for_area_invalid(self):
        with pytest.raises(ValueError):
            tessellation_for_area(0)

    def test_for_cell_side(self):
        tess = tessellation_for_cell_side(0.3)
        assert tess.cell_side >= 0.3

    def test_for_cell_side_large(self):
        assert tessellation_for_cell_side(1.0).cells_per_side == 1
