"""Unit tests for mobility processes (Definition 2 stationarity)."""

import numpy as np
import pytest

from repro.geometry.torus import torus_distance
from repro.mobility.processes import (
    IIDAroundHome,
    MetropolisWalkAroundHome,
    StaticProcess,
    WaypointAroundHome,
)
from repro.mobility.shapes import ConeShape, UniformDiskShape


def make_homes(rng, count=40):
    return rng.random((count, 2))


PROCESS_FACTORIES = {
    "iid": lambda h, s, sc, r: IIDAroundHome(h, s, sc, r),
    "metropolis": lambda h, s, sc, r: MetropolisWalkAroundHome(h, s, sc, r),
    "waypoint": lambda h, s, sc, r: WaypointAroundHome(h, s, sc, r),
}


@pytest.mark.parametrize("kind", sorted(PROCESS_FACTORIES))
class TestCommonContract:
    def test_positions_shape(self, kind, rng):
        homes = make_homes(rng)
        proc = PROCESS_FACTORIES[kind](homes, UniformDiskShape(1.0), 0.1, rng)
        assert proc.positions().shape == (40, 2)
        assert proc.count == 40

    def test_step_returns_positions(self, kind, rng):
        homes = make_homes(rng)
        proc = PROCESS_FACTORIES[kind](homes, UniformDiskShape(1.0), 0.1, rng)
        new = proc.step()
        assert np.allclose(new, proc.positions())

    def test_bounded_distance_from_home(self, kind, rng):
        """Definition 2: movement stays within D/f of the home-point."""
        homes = make_homes(rng)
        scale = 0.07
        proc = PROCESS_FACTORIES[kind](homes, UniformDiskShape(1.0), scale, rng)
        for _ in range(20):
            positions = proc.step()
            assert np.all(torus_distance(positions, homes) <= scale + 1e-9)

    def test_positions_on_torus(self, kind, rng):
        homes = make_homes(rng)
        proc = PROCESS_FACTORIES[kind](homes, UniformDiskShape(1.0), 0.2, rng)
        positions = proc.step()
        assert np.all((positions >= 0) & (positions < 1))

    def test_home_points_read_only(self, kind, rng):
        homes = make_homes(rng)
        proc = PROCESS_FACTORIES[kind](homes, UniformDiskShape(1.0), 0.1, rng)
        with pytest.raises(ValueError):
            proc.home_points[0, 0] = 99.0

    def test_invalid_scale(self, kind, rng):
        with pytest.raises(ValueError):
            PROCESS_FACTORIES[kind](make_homes(rng), UniformDiskShape(1.0), 0.0, rng)


class TestStationaryDistribution:
    def test_iid_mean_radius_matches_shape(self, rng):
        homes = np.full((3000, 2), 0.5)
        proc = IIDAroundHome(homes, UniformDiskShape(1.0), 0.2, rng)
        radii = torus_distance(proc.step(), homes)
        # uniform disk: E[r] = 2R/3 with R = 0.2
        assert float(radii.mean()) == pytest.approx(2 * 0.2 / 3, rel=0.05)

    def test_metropolis_long_run_matches_cone(self, rng):
        """The Metropolis walk must converge to the cone stationary law:
        E[r] = D/2 at unit scale."""
        homes = np.full((400, 2), 0.5)
        proc = MetropolisWalkAroundHome(
            homes, ConeShape(1.0), 0.1, rng, step_fraction=0.4, burn_in=64
        )
        radii = []
        for _ in range(50):
            radii.append(torus_distance(proc.step(), homes) / 0.1)
        mean_r = float(np.mean(radii))
        assert mean_r == pytest.approx(0.5, rel=0.1)

    def test_metropolis_moves(self, rng):
        homes = make_homes(rng)
        proc = MetropolisWalkAroundHome(homes, UniformDiskShape(1.0), 0.1, rng)
        before = proc.positions().copy()
        proc.step()
        assert not np.allclose(before, proc.positions())

    def test_metropolis_is_time_correlated(self, rng):
        """Unlike i.i.d., successive positions must be close together."""
        homes = make_homes(rng, 100)
        scale = 0.1
        proc = MetropolisWalkAroundHome(
            homes, UniformDiskShape(1.0), scale, rng, step_fraction=0.1
        )
        before = proc.positions().copy()
        after = proc.step()
        moved = torus_distance(after, before)
        assert float(np.median(moved)) < 0.5 * scale

    def test_waypoint_speed_bound(self, rng):
        homes = make_homes(rng, 60)
        speed = 0.005
        proc = WaypointAroundHome(homes, UniformDiskShape(1.0), 0.1, rng, speed=speed)
        before = proc.positions().copy()
        after = proc.step()
        assert np.all(torus_distance(after, before) <= speed + 1e-9)

    def test_waypoint_invalid_speed(self, rng):
        with pytest.raises(ValueError):
            WaypointAroundHome(
                make_homes(rng), UniformDiskShape(1.0), 0.1, rng, speed=0.0
            )


class TestStatic:
    def test_never_moves(self, rng):
        homes = make_homes(rng)
        proc = StaticProcess(homes)
        first = proc.positions().copy()
        for _ in range(5):
            assert np.allclose(proc.step(), first)


class TestClassicalSpecialCases:
    """Brownian motion and the hybrid random walk (Remark 4)."""

    def test_brownian_stays_on_torus(self, rng):
        from repro.mobility.processes import BrownianMotion

        proc = BrownianMotion(make_homes(rng), sigma=0.05, rng=rng)
        for _ in range(10):
            positions = proc.step()
            assert np.all((positions >= 0) & (positions < 1))

    def test_brownian_step_scale(self, rng):
        from repro.mobility.processes import BrownianMotion

        proc = BrownianMotion(make_homes(rng, 500), sigma=0.01, rng=rng)
        before = proc.positions().copy()
        after = proc.step()
        moved = torus_distance(after, before)
        # isotropic 2-D Gaussian: E[|step|] = sigma * sqrt(pi/2)
        assert float(moved.mean()) == pytest.approx(
            0.01 * np.sqrt(np.pi / 2), rel=0.15
        )

    def test_brownian_mixes_to_uniform(self, rng):
        from repro.mobility.processes import BrownianMotion

        homes = np.full((2000, 2), 0.5)  # all start at the centre
        proc = BrownianMotion(homes, sigma=0.2, rng=rng)
        for _ in range(30):
            proc.step()
        positions = proc.positions()
        # roughly uniform: each quadrant holds ~1/4 of the nodes
        quadrant = (positions[:, 0] < 0.5) & (positions[:, 1] < 0.5)
        assert 0.15 < float(quadrant.mean()) < 0.35

    def test_brownian_invalid_sigma(self, rng):
        from repro.mobility.processes import BrownianMotion

        with pytest.raises(ValueError):
            BrownianMotion(make_homes(rng), sigma=0.0, rng=rng)

    def test_hybrid_walk_jumps_to_adjacent_cells(self, rng):
        from repro.mobility.processes import HybridRandomWalk

        side = 8
        proc = HybridRandomWalk(make_homes(rng, 200), side, rng)
        before = np.floor(proc.positions() * side).astype(int)
        after = np.floor(proc.step() * side).astype(int)
        hop = np.abs(after - before)
        hop = np.minimum(hop, side - hop)  # wrap-around distance
        assert np.all(hop.sum(axis=1) == 1)  # exactly one axis, one cell

    def test_hybrid_walk_stationary_uniform(self, rng):
        from repro.mobility.processes import HybridRandomWalk

        homes = np.full((3000, 2), 0.1)
        proc = HybridRandomWalk(homes, 4, rng)
        for _ in range(40):
            proc.step()
        positions = proc.positions()
        assert 0.4 < float((positions[:, 0] < 0.5).mean()) < 0.6

    def test_hybrid_walk_invalid_side(self, rng):
        from repro.mobility.processes import HybridRandomWalk

        with pytest.raises(ValueError):
            HybridRandomWalk(make_homes(rng), 0, rng)
