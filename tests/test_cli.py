"""Unit tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestAnalyze:
    def test_default_family(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "regime=strong" in out
        assert "Theta" in out

    def test_with_infrastructure(self, capsys):
        assert main(["analyze", "--bs", "7/8", "--phi", "1"]) == 0
        out = capsys.readouterr().out
        assert "infrastructure term" in out

    def test_invalid_parameters_exit_code(self, capsys):
        assert main(["analyze", "--alpha", "3/4"]) == 2
        assert "invalid parameters" in capsys.readouterr().err

    def test_no_validate_bypasses(self, capsys):
        assert main(["analyze", "--alpha", "3/4", "--no-validate",
                     "--clusters", "1/4", "--radius", "1/4"]) == 0
        assert "trivial" in capsys.readouterr().out


class TestTable1:
    def test_renders_all_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "strong mobility" in out
        assert "trivial mobility" in out


class TestPhase:
    def test_renders_regions(self, capsys):
        assert main(["phase", "--phi", "0", "--grid", "7"]) == 0
        out = capsys.readouterr().out
        assert "M" in out and "I" in out

    def test_negative_phi(self, capsys):
        # argparse needs the = form for option values starting with '-'
        assert main(["phase", "--phi=-1/4", "--grid", "5"]) == 0


class TestSimulate:
    def test_runs_small_network(self, capsys):
        assert main(["simulate", "--n", "150", "--bs", "7/8"]) == 0
        out = capsys.readouterr().out
        assert "flow-level rate" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReproduce:
    def test_writes_report(self, tmp_path, capsys):
        assert main([
            "reproduce", "--out", str(tmp_path), "--grid", "120,240",
        ]) == 0
        report = (tmp_path / "reproduction.md").read_text()
        assert "Table I (closed form)" in report
        assert "measured slope" in report
        assert "phase 2" in report  # figure 2 trace
        assert "Quick mode" in report
