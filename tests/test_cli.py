"""Unit tests for the command-line interface."""

import json
import logging

import pytest

from repro.__main__ import main


class TestAnalyze:
    def test_default_family(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "regime=strong" in out
        assert "Theta" in out

    def test_with_infrastructure(self, capsys):
        assert main(["analyze", "--bs", "7/8", "--phi", "1"]) == 0
        out = capsys.readouterr().out
        assert "infrastructure term" in out

    def test_invalid_parameters_exit_code(self, capsys):
        assert main(["analyze", "--alpha", "3/4"]) == 2
        assert "invalid parameters" in capsys.readouterr().err

    def test_no_validate_bypasses(self, capsys):
        assert main(["analyze", "--alpha", "3/4", "--no-validate",
                     "--clusters", "1/4", "--radius", "1/4"]) == 0
        assert "trivial" in capsys.readouterr().out


class TestTable1:
    def test_renders_all_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "strong mobility" in out
        assert "trivial mobility" in out


class TestPhase:
    def test_renders_regions(self, capsys):
        assert main(["phase", "--phi", "0", "--grid", "7"]) == 0
        out = capsys.readouterr().out
        assert "M" in out and "I" in out

    def test_negative_phi(self, capsys):
        # argparse needs the = form for option values starting with '-'
        assert main(["phase", "--phi=-1/4", "--grid", "5"]) == 0


class TestSimulate:
    def test_runs_small_network(self, capsys):
        assert main(["simulate", "--n", "150", "--bs", "7/8"]) == 0
        out = capsys.readouterr().out
        assert "flow-level rate" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReproduce:
    def test_writes_report(self, tmp_path, capsys):
        assert main([
            "reproduce", "--out", str(tmp_path), "--grid", "120,240",
        ]) == 0
        report = (tmp_path / "reproduction.md").read_text()
        assert "Table I (closed form)" in report
        assert "measured slope" in report
        assert "phase 2" in report  # figure 2 trace
        assert "Quick mode" in report


SWEEP_ARGS = ["sweep", "--grid", "100,200", "--trials", "1",
              "--scheme", "A", "--seed", "3"]


def sweep_output(capsys, extra):
    assert main(SWEEP_ARGS + extra) == 0
    return capsys.readouterr().out


def digest_line(out):
    return next(line for line in out.splitlines() if line.startswith("digest:"))


class TestSweepStore:
    def test_second_invocation_hits_with_identical_digest(self, tmp_path, capsys):
        store = str(tmp_path / "results")
        cold = sweep_output(capsys, ["--store", store])
        warm = sweep_output(capsys, ["--store", store])
        assert "cache: 0 hit(s), 2 miss(es)" in cold
        assert "cache: 2 hit(s), 0 miss(es)" in warm
        assert digest_line(warm) == digest_line(cold)

    def test_store_matches_storeless_digest(self, tmp_path, capsys):
        bare = sweep_output(capsys, [])
        stored = sweep_output(capsys, ["--store", str(tmp_path / "results")])
        assert digest_line(stored) == digest_line(bare)
        assert "cache:" not in bare

    def test_no_cache_forces_recompute(self, tmp_path, capsys):
        store = str(tmp_path / "results")
        sweep_output(capsys, ["--store", store])
        refreshed = sweep_output(capsys, ["--store", store, "--no-cache"])
        assert "cache: 0 hit(s), 2 miss(es)" in refreshed


class TestRuns:
    def seed_store(self, tmp_path, capsys):
        store = str(tmp_path / "results")
        sweep_output(capsys, ["--store", store])
        return store

    def test_list_shows_recorded_run(self, tmp_path, capsys):
        store = self.seed_store(tmp_path, capsys)
        assert main(["runs", "list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out and "run id" in out
        assert "1 run(s), 2 journaled trial(s)" in out

    def test_list_empty_store(self, tmp_path, capsys):
        assert main(["runs", "list", "--store", str(tmp_path / "empty")]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_show_dumps_manifest(self, tmp_path, capsys):
        import json

        store = self.seed_store(tmp_path, capsys)
        from repro.store import RunStore

        run_id = RunStore(store).list_runs()[0]["run_id"]
        assert main(["runs", "show", run_id[:12], "--store", store]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["command"] == "sweep"
        assert manifest["provenance"]["schema_version"] == 1

    def test_show_missing_id_errors(self, tmp_path, capsys):
        store = self.seed_store(tmp_path, capsys)
        assert main(["runs", "show", "nope", "--store", store]) == 2
        assert "no stored run" in capsys.readouterr().err

    def test_show_without_id_errors(self, tmp_path, capsys):
        store = self.seed_store(tmp_path, capsys)
        assert main(["runs", "show", "--store", store]) == 2
        assert "requires" in capsys.readouterr().err

    def test_gc_reports_and_keeps_cache_warm(self, tmp_path, capsys):
        store = self.seed_store(tmp_path, capsys)
        assert main(["runs", "gc", "--store", store]) == 0
        assert "2 entries kept" in capsys.readouterr().out
        warm = sweep_output(capsys, ["--store", store])
        assert "cache: 2 hit(s)" in warm

    def test_store_path_is_a_file_errors_cleanly(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        assert main(SWEEP_ARGS + ["--store", str(blocker)]) == 2
        assert "store error" in capsys.readouterr().err


class TestServe:
    def seed_store(self, tmp_path, capsys, runs=2):
        """Two identical sweeps into one store: the second replays the
        journal, so the pair is digest-identical with the rerun fully
        cached -- the canonical regression-scan population."""
        store = str(tmp_path / "results")
        for _ in range(runs):
            sweep_output(capsys, ["--store", store])
        return store

    def test_query_finds_both_runs_with_identical_digests(
        self, tmp_path, capsys
    ):
        store = self.seed_store(tmp_path, capsys)
        assert main(["serve", "query", "--store", store, "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 2
        assert records[0]["digest"] == records[1]["digest"]
        assert records[0]["family"] == records[1]["family"]
        # the fully-cached rerun (newest first) makes no throughput claim
        assert records[0]["fresh_trials"] == 0
        assert records[1]["fresh_trials"] == 2

    def test_query_table_output(self, tmp_path, capsys):
        store = self.seed_store(tmp_path, capsys)
        assert main([
            "serve", "query", "--store", store,
            "--command", "sweep", "--scheme", "A", "--min-n", "150",
        ]) == 0
        out = capsys.readouterr().out
        assert "run id" in out and "family" in out
        assert "2 of 2 run(s) matched" in out

    def test_query_without_matches_says_so(self, tmp_path, capsys):
        store = self.seed_store(tmp_path, capsys, runs=1)
        assert main([
            "serve", "query", "--store", store, "--command", "figure1",
        ]) == 0
        assert "match the query" in capsys.readouterr().out

    def test_malformed_param_filter_exits_2(self, tmp_path, capsys):
        store = self.seed_store(tmp_path, capsys, runs=1)
        assert main([
            "serve", "query", "--store", store, "--param", "alpha",
        ]) == 2
        assert "NAME=FRACTION" in capsys.readouterr().err

    def test_regress_clean_pair_exits_0(self, tmp_path, capsys):
        store = self.seed_store(tmp_path, capsys)
        assert main(["serve", "regress", "--store", store]) == 0
        assert "no regressions" in capsys.readouterr().out

    def inject_drift(self, store):
        """Rewrite the newest manifest's digest, simulating a behaviour
        change that landed without a schema bump."""
        import pathlib

        from repro.store import RunStore

        run = RunStore(store).list_runs()[0]
        path = pathlib.Path(store) / RunStore.RUNS_DIR / f"{run['run_id']}.json"
        run["digest"] = "b" * 64
        path.write_text(json.dumps(run, indent=2))

    def test_regress_flags_injected_drift_with_exit_3(self, tmp_path, capsys):
        store = self.seed_store(tmp_path, capsys)
        self.inject_drift(store)
        assert main(["serve", "regress", "--store", store]) == 3
        out = capsys.readouterr().out
        assert "digest-drift" in out
        assert "1 regression(s)" in out

    def test_regress_json_output(self, tmp_path, capsys):
        store = self.seed_store(tmp_path, capsys)
        self.inject_drift(store)
        assert main(["serve", "regress", "--store", store, "--json"]) == 3
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["regressions"][0]["kind"] == "digest-drift"

    def test_report_writes_valid_json(self, tmp_path, capsys):
        store = self.seed_store(tmp_path, capsys)
        out_path = tmp_path / "report.json"
        assert main([
            "serve", "report", "--store", store,
            "--format", "json", "--out", str(out_path),
        ]) == 0
        report = json.loads(out_path.read_text())
        assert report["total_runs"] == 2
        assert report["regressions"]["ok"] is True

    def test_report_default_path_is_html_in_store(self, tmp_path, capsys):
        store = self.seed_store(tmp_path, capsys, runs=1)
        assert main(["serve", "report", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        page = (tmp_path / "results" / "serve" / "report.html").read_text()
        assert page.startswith("<!DOCTYPE html>")

    def test_invalid_slowdown_threshold_exits_2(self, tmp_path, capsys):
        store = self.seed_store(tmp_path, capsys, runs=1)
        assert main([
            "serve", "regress", "--store", store, "--slowdown", "2",
        ]) == 2
        assert "invalid arguments" in capsys.readouterr().err


def read_trace(directory):
    """Parse the single trace file in ``directory`` into records."""
    files = sorted(directory.glob("trace-*.jsonl"))
    assert len(files) == 1, files
    return [json.loads(line) for line in files[0].read_text().splitlines()]


class TestObservability:
    @pytest.fixture(autouse=True)
    def _drop_configured_handlers(self):
        # main() installs a stderr handler bound to capsys's stream; strip
        # it afterwards so later tests never log into a stale capture
        yield
        root = logging.getLogger("repro")
        for handler in list(root.handlers):
            if getattr(handler, "_repro_configured", False):
                root.removeHandler(handler)

    def test_trace_covers_every_trial(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        assert main(SWEEP_ARGS + ["--trace", str(trace_dir)]) == 0
        err = capsys.readouterr().err
        assert "trace:" in err
        records = read_trace(trace_dir)
        started = {r["index"] for r in records if r["event"] == "trial_started"}
        ended = {
            r["index"]
            for r in records
            if r["event"] in ("trial_finished", "trial_cached", "trial_failed")
        }
        # two grid points x one trial: both announced and both resolved
        assert started == ended == {0, 1}
        assert any(r["event"] == "sweep_progress" for r in records)
        assert any(r["event"] == "span" for r in records)
        assert all("ts" in r for r in records)

    def test_bare_trace_lands_next_to_store(self, tmp_path, capsys):
        store = tmp_path / "results"
        assert main(SWEEP_ARGS + ["--store", str(store), "--trace"]) == 0
        records = read_trace(store)
        # journaled trials show up in the trace alongside the lifecycle
        assert any(r["event"] == "journal_appended" for r in records)

    def test_warm_run_traces_cache_hits(self, tmp_path, capsys):
        store = tmp_path / "results"
        assert main(SWEEP_ARGS + ["--store", str(store)]) == 0
        trace_dir = tmp_path / "traces"
        assert main(SWEEP_ARGS + ["--store", str(store),
                                  "--trace", str(trace_dir)]) == 0
        records = read_trace(trace_dir)
        cached = [r for r in records if r["event"] == "trial_cached"]
        assert {r["index"] for r in cached} == {0, 1}
        progress = [r for r in records if r["event"] == "sweep_progress"]
        assert progress[-1]["cached"] == 2

    def test_progress_forced_on_non_tty(self, capsys):
        assert main(SWEEP_ARGS + ["--progress"]) == 0
        err = capsys.readouterr().err
        assert "trials/s" in err
        assert "2/2" in err

    def test_no_progress_is_silent(self, capsys):
        assert main(SWEEP_ARGS + ["--no-progress"]) == 0
        assert "trials/s" not in capsys.readouterr().err

    def test_log_level_info_writes_to_stderr(self, capsys):
        assert main(["--log-level", "INFO"] + SWEEP_ARGS) == 0
        err = capsys.readouterr().err
        assert "INFO" in err
        assert "repro" in err

    def test_log_json_lines_parse(self, capsys):
        assert main(["--log-level", "INFO", "--log-json"] + SWEEP_ARGS) == 0
        lines = [l for l in capsys.readouterr().err.splitlines() if l]
        records = [json.loads(line) for line in lines]
        assert all(r["logger"].startswith("repro") for r in records)

    def test_unknown_log_level_exits_2(self, capsys):
        assert main(["--log-level", "LOUD", "table1"]) == 2
        assert "unknown log level" in capsys.readouterr().err


class TestMultiStore:
    def test_sweep_reads_replica_and_writes_primary(self, tmp_path, capsys):
        replica = str(tmp_path / "agent")
        primary = str(tmp_path / "coord")
        seeded = sweep_output(capsys, ["--store", replica])
        merged = sweep_output(
            capsys, ["--store", primary, "--store", replica]
        )
        assert "cache: 2 hit(s), 0 miss(es)" in merged
        assert digest_line(merged) == digest_line(seeded)
        from repro.store import RunStore

        assert RunStore(primary).keys() == []  # replica served every hit
        assert len(RunStore(primary).list_runs()) == 1  # manifest is primary's

    def test_runs_list_merges_stores(self, tmp_path, capsys):
        first = str(tmp_path / "a")
        second = str(tmp_path / "b")
        sweep_output(capsys, ["--store", first])
        sweep_output(capsys, ["--store", second])
        assert main(["runs", "list", "--store", first, "--store", second]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out

    def test_serve_query_merges_stores(self, tmp_path, capsys):
        first = str(tmp_path / "a")
        second = str(tmp_path / "b")
        sweep_output(capsys, ["--store", first])
        sweep_output(capsys, ["--store", second])
        assert main(
            ["serve", "query", "--store", first, "--store", second]
        ) == 0
        out = capsys.readouterr().out
        assert "2 match(es)" in out or "2 run(s)" in out


class TestFabricCLI:
    def test_status_without_coordinator_exits_2(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["fabric", "agents", "--port", str(port)]) == 2
        assert "no fabric coordinator" in capsys.readouterr().err

    def test_sweep_fabric_zero_agents_degrades(self, capsys):
        out = sweep_output(capsys, ["--fabric", "--fabric-port", "0",
                                    "--fabric-wait", "0.2"])
        assert "fabric:" in out
        assert "0 agent(s) seen" in out
