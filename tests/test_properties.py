"""Cross-cutting property-based tests (hypothesis) on core invariants."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.order import Order, order_min
from repro.geometry.tessellation import SquareTessellation
from repro.infrastructure.backbone import Backbone
from repro.mobility.shapes import UniformDiskShape
from repro.routing.scheme_b import SchemeB
from repro.simulation.traffic import permutation_traffic
from repro.wireless.link_capacity import (
    contact_probability_ms_bs_at_range,
    contact_probability_ms_ms_at_range,
)

exponents = st.fractions(
    min_value=Fraction(-2), max_value=Fraction(2), max_denominator=8
)


class TestOrderAlgebraLaws:
    @given(a=exponents, b=exponents, c=exponents)
    def test_multiplication_distributes_over_min(self, a, b, c):
        x, y, z = Order(a), Order(b), Order(c)
        assert order_min(x * z, y * z) == order_min(x, y) * z

    @given(a=exponents, b=exponents, c=exponents)
    def test_multiplication_associative(self, a, b, c):
        x, y, z = Order(a), Order(b), Order(c)
        assert (x * y) * z == x * (y * z)

    @given(a=exponents, b=exponents)
    def test_division_inverts_multiplication(self, a, b):
        x, y = Order(a), Order(b)
        assert (x * y) / y == x

    @given(a=exponents)
    def test_sqrt_squares_back(self, a):
        x = Order(a)
        assert x.sqrt() ** 2 == x

    @given(a=exponents, b=exponents)
    def test_dominance_sum_is_commutative_idempotent(self, a, b):
        x, y = Order(a), Order(b)
        assert x + y == y + x
        assert x + x == x


class TestManhattanRouteLength:
    @given(
        side=st.integers(2, 12),
        a=st.integers(0, 143),
        b=st.integers(0, 143),
    )
    def test_route_length_is_wrapped_l1_distance(self, side, a, b):
        tess = SquareTessellation(side)
        a %= tess.cell_count
        b %= tess.cell_count
        row_a, col_a = tess.rowcol(a)
        row_b, col_b = tess.rowcol(b)
        wrap_rows = min((row_a - row_b) % side, (row_b - row_a) % side)
        wrap_cols = min((col_a - col_b) % side, (col_b - col_a) % side)
        route = tess.manhattan_route(a, b)
        assert len(route) == wrap_rows + wrap_cols + 1


class TestContactProbabilityProperties:
    SHAPE = UniformDiskShape(1.0)

    @given(
        f=st.floats(1.0, 30.0),
        r_t=st.floats(1e-4, 5e-3),
        d=st.floats(0.0, 0.7),
    )
    @settings(max_examples=60)
    def test_probabilities_bounded(self, f, r_t, d):
        dd = np.array([d])
        ms_ms = contact_probability_ms_ms_at_range(self.SHAPE, f, r_t, dd)[0]
        ms_bs = contact_probability_ms_bs_at_range(self.SHAPE, f, r_t, dd)[0]
        assert 0.0 <= ms_ms <= 1.0
        assert 0.0 <= ms_bs <= 1.0

    @given(f=st.floats(1.0, 20.0), r_t=st.floats(1e-4, 1e-2))
    @settings(max_examples=40)
    def test_monotone_in_home_distance(self, f, r_t):
        grid = np.linspace(0.0, 0.7, 24)
        ms_ms = contact_probability_ms_ms_at_range(self.SHAPE, f, r_t, grid)
        ms_bs = contact_probability_ms_bs_at_range(self.SHAPE, f, r_t, grid)
        assert np.all(np.diff(ms_ms) <= 1e-12)
        assert np.all(np.diff(ms_bs) <= 1e-12)

    @given(f=st.floats(1.0, 20.0), d=st.floats(0.0, 0.05))
    @settings(max_examples=40)
    def test_quadratic_in_range(self, f, d):
        dd = np.array([d])
        small = contact_probability_ms_ms_at_range(self.SHAPE, f, 1e-3, dd)[0]
        double = contact_probability_ms_ms_at_range(self.SHAPE, f, 2e-3, dd)[0]
        if small > 0:
            assert double / small == pytest.approx(4.0)


class TestSchemeBFlowInvariants:
    def _scheme(self, c, seed=0, n=60, k=8):
        rng = np.random.default_rng(seed)
        homes = rng.random((n, 2))
        bs = rng.random((k, 2))
        ms_zone, bs_zone, _ = SchemeB.squarelet_zones(homes, bs, 2)
        access = SchemeB.access_matrix(
            homes, bs, UniformDiskShape(1.0), 2.0, 0.08
        )
        return SchemeB(ms_zone, bs_zone, access, Backbone(k, c))

    @given(
        c_small=st.floats(1e-6, 1e-3),
        factor=st.floats(1.5, 100.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_rate_monotone_in_wire_capacity(self, c_small, factor):
        traffic = permutation_traffic(np.random.default_rng(5), 60)
        slow = self._scheme(c_small).sustainable_rate(traffic).per_node_rate
        fast = self._scheme(c_small * factor).sustainable_rate(traffic).per_node_rate
        assert fast >= slow

    @given(scale=st.floats(0.1, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_backbone_scale_inverse_in_flow(self, scale):
        backbone = Backbone(6, 1.0)
        zone = [0, 0, 0, 1, 1, 1]
        base = backbone.spread_scale(zone, {(0, 1): 1.0})
        scaled = backbone.spread_scale(zone, {(0, 1): scale})
        assert scaled == pytest.approx(base / scale)


class TestTrafficInvariants:
    @given(n=st.integers(2, 150), seed=st.integers(0, 100))
    @settings(max_examples=40)
    def test_permutation_invariants(self, n, seed):
        traffic = permutation_traffic(np.random.default_rng(seed), n)
        dest = traffic.destination
        assert sorted(dest.tolist()) == list(range(n))
        assert np.all(dest != np.arange(n))
        matrix = traffic.traffic_matrix()
        assert matrix.sum() == n
