"""Integration tests validating the paper's lemmas and theorems empirically.

Each test realises finite networks and checks the *mechanism* behind one
result; the full scaling sweeps live in ``benchmarks/``.
"""

import math

import numpy as np
import pytest

from repro.core.regimes import NetworkParameters
from repro.geometry.torus import pairwise_distances, torus_distance, wrap
from repro.mobility.clustered import place_home_points
from repro.mobility.processes import IIDAroundHome
from repro.mobility.shapes import UniformDiskShape
from repro.simulation.network import HybridNetwork
from repro.simulation.traffic import permutation_traffic
from repro.wireless.link_capacity import measure_activity_fraction
from repro.wireless.protocol_model import ProtocolModel
from repro.wireless.scheduler import PolicySStar

SHAPE = UniformDiskShape(1.0)


class TestLemma2LinkCapacity:
    """Measured S* link capacity tracks the contact probability."""

    def test_enabled_pairs_have_close_home_points(self, rng):
        """Under S*, enabled MS pairs must have home-points within 2D/f
        (the support of eta), and closer home-points are enabled more often."""
        n, f = 250, 2.5
        homes = rng.random((n, 2))
        process = IIDAroundHome(homes, SHAPE, 1.0 / f, rng)
        scheduler = PolicySStar(node_count=n, c_t=0.4, delta=0.5)
        near, far = 0, 0
        threshold = 1.0 / f  # half the support of eta
        for _ in range(150):
            positions = process.step()
            for i, j in scheduler.schedule(positions).pairs:
                home_distance = float(torus_distance(homes[i], homes[j]))
                assert home_distance <= 2.0 / f + 1e-9
                if home_distance < threshold:
                    near += 1
                else:
                    far += 1
        assert near + far > 30  # enough events for the comparison
        # eta decreases with distance, so near-home pairs dominate after
        # normalising by the number of candidate pairs at each distance
        candidates = pairwise_distances(homes)
        near_pairs = np.sum(np.triu(candidates < threshold, k=1))
        far_pairs = np.sum(
            np.triu((candidates >= threshold) & (candidates <= 2.0 / f), k=1)
        )
        assert near / max(near_pairs, 1) > far / max(far_pairs, 1)


class TestLemma3SchedulingFraction:
    """Each node is scheduled a Theta(1) fraction of time under S*."""

    def test_activity_roughly_constant_in_n(self, rng):
        fractions = {}
        for n in (150, 450):
            homes = rng.random((n, 2))
            process = IIDAroundHome(homes, SHAPE, 1.0 / 2.0, rng)
            scheduler = PolicySStar(node_count=n, c_t=0.4, delta=0.5)
            activity = measure_activity_fraction(process, scheduler, slots=100)
            fractions[n] = float(activity.mean())
        assert fractions[150] > 0.005
        assert fractions[450] > 0.005
        ratio = fractions[150] / fractions[450]
        assert 1 / 3 < ratio < 3


class TestTheorem2RangeOptimality:
    """R_T = Theta(1/sqrt(n)) maximises scheduled concurrency."""

    def test_concurrency_peaks_near_critical_range(self, rng):
        n = 400
        positions = rng.random((n, 2))
        base = 1.0 / math.sqrt(n)
        from repro.wireless.scheduler import VariableRangeScheduler

        def pairs_at(multiplier):
            scheduler = VariableRangeScheduler(multiplier * base, delta=0.5)
            total = 0
            for seed in range(5):
                pts = np.random.default_rng(seed).random((n, 2))
                total += len(scheduler.schedule(pts))
            return total

        near_optimal = pairs_at(0.4)
        too_small = pairs_at(0.02)
        too_large = pairs_at(6.0)
        assert near_optimal > too_small
        assert near_optimal > too_large


class TestLemma9AccessScaling:
    """MS <-> infrastructure rate scales like k/n."""

    def test_mean_access_tracks_k_over_n(self, rng):
        params = NetworkParameters(
            alpha="1/8", cluster_exponent=1, bs_exponent="7/8", backbone_exponent=1
        )
        means = {}
        for n in (200, 800):
            net = HybridNetwork.build(params, n, rng)
            access = net.scheme_b().ms_access_capacity()
            means[n] = float(access.mean())
        measured_ratio = means[200] / means[800]
        expected_ratio = (200 ** (7 / 8) / 200) / (800 ** (7 / 8) / 800)
        assert measured_ratio == pytest.approx(expected_ratio, rel=0.5)

    def test_every_ms_has_positive_access_when_k_dense(self, rng):
        params = NetworkParameters(
            alpha="1/8", cluster_exponent=1, bs_exponent="7/8", backbone_exponent=1
        )
        net = HybridNetwork.build(params, 600, rng)
        assert float(net.scheme_b().ms_access_capacity().min()) > 0


class TestTheorem6PlacementInvariance:
    """BS placement (matched / uniform / regular) does not change the
    capacity order in the uniformly dense regime."""

    def test_rates_within_constant_factor(self):
        params = NetworkParameters(
            alpha="1/8", cluster_exponent=1, bs_exponent="7/8", backbone_exponent=1
        )
        rates = {}
        for placement in ("matched", "uniform", "regular"):
            samples = []
            for seed in range(3):
                rng = np.random.default_rng(seed)
                net = HybridNetwork.build(params, 400, rng, placement=placement)
                traffic = permutation_traffic(np.random.default_rng(99), 400)
                samples.append(net.scheme_b().sustainable_rate(traffic).per_node_rate)
            rates[placement] = float(np.median(samples))
        values = list(rates.values())
        assert min(values) > 0
        assert max(values) / min(values) < 5.0


class TestLemma12ClusterIsolation:
    """At R_T = r sqrt(m/n), different clusters do not interfere."""

    def test_no_cross_cluster_interference(self, rng):
        # Realise the paper's non-overlap assumption (M - 2R < 0 holds only
        # asymptotically) with well-separated deterministic centres.
        from repro.geometry.torus import disk_sample

        n, m, r, f = 200, 4, 0.1, 20.0
        centers = np.array([[0.25, 0.25], [0.25, 0.75], [0.75, 0.25], [0.75, 0.75]])
        assignment = rng.integers(0, m, size=n)
        homes = disk_sample(rng, centers[assignment], r)
        offsets = SHAPE.sample_offsets(rng, n, 1.0 / f)
        positions = wrap(homes + offsets)
        r_t = r * math.sqrt(m / n)
        model_checker = ProtocolModel(delta=1.0)
        count = model_checker.cross_cluster_interference_count(
            positions, assignment, r_t
        )
        assert count == 0


class TestTheorem8TrivialEquivalence:
    """Under trivial mobility, link feasibility is time-invariant."""

    def test_links_stable_over_time(self, rng):
        # mobility radius D/f much smaller than the transmission range
        n, m = 300, 4
        r, f = 0.1, 400.0
        model = place_home_points(rng, n=n, m=m, radius=r)
        process = IIDAroundHome(model.points, SHAPE, 1.0 / f, rng)
        n_tilde = n / m
        r_t = r * math.sqrt(math.log(n_tilde) / n_tilde)
        margin = 4.0 / f
        p0 = process.step()
        initial = pairwise_distances(p0) <= (r_t - margin)
        for _ in range(30):
            positions = process.step()
            still_connected = pairwise_distances(positions) <= r_t
            # every link comfortably inside range at t0 stays a link
            assert np.all(still_connected[initial])

    def test_weak_mobility_links_are_unstable(self, rng):
        """Contrast: when mobility is comparable to the range, links churn."""
        n = 200
        homes = rng.random((n, 2))
        f = 3.0
        r_t = 2.0 / math.sqrt(n)
        process = IIDAroundHome(homes, SHAPE, 1.0 / f, rng)
        p0 = process.step()
        initial = np.triu(pairwise_distances(p0) <= r_t, k=1)
        broken = 0
        p1 = process.step()
        now = pairwise_distances(p1) <= r_t
        broken = np.sum(initial & ~now)
        assert broken > 0


class TestCorollary2Tightness:
    """Measured optimal-scheme rate sits between loose bounds around the
    closed-form prediction at moderate n."""

    @pytest.mark.parametrize(
        "params",
        [
            NetworkParameters(alpha="1/4", cluster_exponent=1),
            NetworkParameters(
                alpha="1/8", cluster_exponent=1, bs_exponent="7/8",
                backbone_exponent=1,
            ),
        ],
        ids=["mobility-dominant", "infrastructure-dominant"],
    )
    def test_measured_rate_positive_and_below_one(self, params, rng):
        net = HybridNetwork.build(params, 300, rng)
        rate = net.sustainable_rate().per_node_rate
        assert 0 < rate < 1
