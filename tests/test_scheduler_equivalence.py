"""Sparse vs dense vs reference scheduler equivalence.

Every scheduler has three evaluation paths -- the sparse cell-grid default
(``schedule(positions)``), the dense-matrix path (``distances=`` injection)
and the loop reference (``reference=True``) -- and all of them must produce
*exactly* the same ``Schedule.pairs`` in the same order, on randomized
position sets and on the degenerate geometries the sweeps can produce
(single node, co-located nodes, range exceeding the torus diameter).  The
bit-identity matters beyond aesthetics: the persistent experiment store
keys cached trials by result digests, which must not shift with the
evaluation path.
"""

import math

import numpy as np
import pytest

from repro.geometry.neighbors import CellGridIndex
from repro.geometry.torus import pairwise_distances
from repro.wireless.protocol_model import ProtocolModel
from repro.wireless.scheduler import (
    GreedyMatchingScheduler,
    PolicySStar,
    VariableRangeScheduler,
)

CASES = 200

def _random_case(seed):
    """One randomized geometry: positions plus a range/delta draw."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 90))
    # Mix uniform draws with clustered ones so guard zones actually bite.
    if rng.random() < 0.3:
        centers = rng.random((max(1, n // 8), 2))
        picks = rng.integers(0, centers.shape[0], size=n)
        positions = np.mod(
            centers[picks] + rng.normal(scale=0.02, size=(n, 2)), 1.0
        )
    else:
        positions = rng.random((n, 2))
    transmission_range = float(rng.uniform(0.01, 0.6))
    delta = float(rng.uniform(0.2, 2.0))
    return positions, transmission_range, delta


class TestPolicySStarEquivalence:
    @pytest.mark.parametrize("seed_block", range(10))
    def test_randomized_cases(self, seed_block):
        for seed in range(seed_block * (CASES // 10), (seed_block + 1) * (CASES // 10)):
            positions, _range, delta = _random_case(seed)
            n = max(2, positions.shape[0])
            fast = PolicySStar(n, c_t=1.0, delta=delta)
            slow = PolicySStar(n, c_t=1.0, delta=delta, reference=True)
            assert fast.schedule(positions).pairs == slow.schedule(positions).pairs, (
                f"seed {seed}"
            )

    def test_single_node(self):
        positions = np.array([[0.3, 0.7]])
        fast = PolicySStar(2)
        slow = PolicySStar(2, reference=True)
        assert fast.schedule(positions).pairs == slow.schedule(positions).pairs == ()

    def test_all_colocated(self):
        positions = np.zeros((6, 2))
        fast = PolicySStar(6, c_t=1.0)
        slow = PolicySStar(6, c_t=1.0, reference=True)
        assert fast.schedule(positions).pairs == slow.schedule(positions).pairs

    def test_two_colocated_nodes_are_enabled(self):
        """n=2 co-located: each guard disk holds exactly the pair itself."""
        positions = np.zeros((2, 2))
        fast = PolicySStar(2, c_t=1.0)
        slow = PolicySStar(2, c_t=1.0, reference=True)
        assert fast.schedule(positions).pairs == slow.schedule(positions).pairs == ((0, 1),)


class TestVariableRangeEquivalence:
    @pytest.mark.parametrize("seed_block", range(10))
    def test_randomized_cases(self, seed_block):
        for seed in range(seed_block * (CASES // 10), (seed_block + 1) * (CASES // 10)):
            positions, transmission_range, delta = _random_case(seed + 10_000)
            fast = VariableRangeScheduler(transmission_range, delta=delta)
            slow = VariableRangeScheduler(
                transmission_range, delta=delta, reference=True
            )
            assert fast.schedule(positions).pairs == slow.schedule(positions).pairs, (
                f"seed {seed}"
            )

    def test_range_larger_than_torus(self):
        """Range beyond the torus diameter: every node is in every guard
        zone, so nothing is ever enabled (except the trivial n=2 case)."""
        rng = np.random.default_rng(42)
        positions = rng.random((12, 2))
        fast = VariableRangeScheduler(2.0)
        slow = VariableRangeScheduler(2.0, reference=True)
        assert fast.schedule(positions).pairs == slow.schedule(positions).pairs == ()

    def test_single_node(self):
        positions = np.array([[0.1, 0.2]])
        fast = VariableRangeScheduler(0.3)
        slow = VariableRangeScheduler(0.3, reference=True)
        assert fast.schedule(positions).pairs == slow.schedule(positions).pairs == ()


class TestGreedyMatchingEquivalence:
    @pytest.mark.parametrize("seed_block", range(10))
    def test_randomized_cases(self, seed_block):
        for seed in range(seed_block * (CASES // 10), (seed_block + 1) * (CASES // 10)):
            positions, transmission_range, delta = _random_case(seed + 20_000)
            fast = GreedyMatchingScheduler(transmission_range, delta=delta)
            slow = GreedyMatchingScheduler(
                transmission_range, delta=delta, reference=True
            )
            assert fast.schedule(positions).pairs == slow.schedule(positions).pairs, (
                f"seed {seed}"
            )

    @pytest.mark.parametrize("seed", range(30))
    def test_candidate_restriction_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        positions = rng.random((40, 2))
        candidates = [
            (int(a), int(b))
            for a, b in rng.integers(0, 40, size=(25, 2))
            if a != b
        ]
        fast = GreedyMatchingScheduler(0.4, delta=0.7)
        slow = GreedyMatchingScheduler(0.4, delta=0.7, reference=True)
        assert (
            fast.schedule(positions, candidates=candidates).pairs
            == slow.schedule(positions, candidates=candidates).pairs
        )

    def test_all_colocated(self):
        positions = np.full((8, 2), 0.25)
        fast = GreedyMatchingScheduler(0.1)
        slow = GreedyMatchingScheduler(0.1, reference=True)
        assert fast.schedule(positions).pairs == slow.schedule(positions).pairs

    def test_range_larger_than_torus(self):
        rng = np.random.default_rng(7)
        positions = rng.random((15, 2))
        fast = GreedyMatchingScheduler(2.0)
        slow = GreedyMatchingScheduler(2.0, reference=True)
        assert fast.schedule(positions).pairs == slow.schedule(positions).pairs

    def test_single_node(self):
        positions = np.array([[0.9, 0.9]])
        fast = GreedyMatchingScheduler(0.5)
        slow = GreedyMatchingScheduler(0.5, reference=True)
        assert fast.schedule(positions).pairs == slow.schedule(positions).pairs == ()


class TestSparseDensePathEquivalence:
    """The cell-grid default must match the dense ``distances=`` path
    bit-for-bit: same pairs, same order, at every n the sweeps use."""

    @pytest.mark.parametrize("seed_block", range(5))
    def test_sstar_sparse_vs_dense(self, seed_block):
        for seed in range(seed_block * 20, (seed_block + 1) * 20):
            positions, _range, delta = _random_case(seed + 40_000)
            n = max(2, positions.shape[0])
            policy = PolicySStar(n, c_t=1.0, delta=delta)
            dense = policy.schedule(
                positions, distances=pairwise_distances(positions)
            )
            assert policy.schedule(positions).pairs == dense.pairs, f"seed {seed}"

    @pytest.mark.parametrize("seed_block", range(5))
    def test_greedy_sparse_vs_dense(self, seed_block):
        for seed in range(seed_block * 20, (seed_block + 1) * 20):
            positions, transmission_range, delta = _random_case(seed + 50_000)
            scheduler = GreedyMatchingScheduler(transmission_range, delta=delta)
            dense = scheduler.schedule(
                positions, distances=pairwise_distances(positions)
            )
            assert scheduler.schedule(positions).pairs == dense.pairs, (
                f"seed {seed}"
            )

    @pytest.mark.parametrize("n", [50, 200, 800])
    def test_sstar_three_way_at_scaling_sizes(self, n):
        """sparse == dense == reference at sizes spanning the sweep grid
        (reference capped at n=200 -- it is O(n^2 pairs))."""
        rng = np.random.default_rng(n)
        positions = rng.random((n, 2))
        policy = PolicySStar(n, c_t=1.5, delta=1.0)
        sparse = policy.schedule(positions).pairs
        dense = policy.schedule(
            positions, distances=pairwise_distances(positions)
        ).pairs
        assert sparse == dense
        if n <= 200:
            slow = PolicySStar(n, c_t=1.5, delta=1.0, reference=True)
            assert sparse == slow.schedule(positions).pairs

    @pytest.mark.parametrize("seed", range(15))
    def test_greedy_candidate_restriction_sparse_vs_dense(self, seed):
        rng = np.random.default_rng(seed)
        positions = rng.random((60, 2))
        candidates = [
            (int(a), int(b))
            for a, b in rng.integers(0, 60, size=(40, 2))
            if a != b
        ]
        scheduler = GreedyMatchingScheduler(0.3, delta=0.8)
        dense = scheduler.schedule(
            positions,
            distances=pairwise_distances(positions),
            candidates=candidates,
        )
        sparse = scheduler.schedule(positions, candidates=candidates)
        assert sparse.pairs == dense.pairs

    @pytest.mark.parametrize("seed", range(10))
    def test_prebuilt_index_matches_internal(self, seed):
        """Passing the per-slot index (as the simulator does) changes
        nothing versus letting the scheduler build its own."""
        rng = np.random.default_rng(seed)
        positions = rng.random((120, 2))
        index = CellGridIndex(positions)
        policy = PolicySStar(120, c_t=1.2, delta=1.0)
        greedy = GreedyMatchingScheduler(1.2 / math.sqrt(120), delta=1.0)
        assert (
            policy.schedule(positions, index=index).pairs
            == policy.schedule(positions).pairs
        )
        assert (
            greedy.schedule(positions, index=index).pairs
            == greedy.schedule(positions).pairs
        )

    def test_greedy_tie_break_is_deterministic(self):
        """Equidistant candidates resolve by ``(dist, a, b)`` regardless of
        enumeration order (dense row-major vs sparse stencil)."""
        # four nodes on a 0.1-spaced line: links (0,1), (1,2), (2,3) all tie
        positions = np.array([[0.1, 0.5], [0.2, 0.5], [0.3, 0.5], [0.4, 0.5]])
        scheduler = GreedyMatchingScheduler(0.11, delta=0.5)
        sparse = scheduler.schedule(positions)
        dense = scheduler.schedule(
            positions, distances=pairwise_distances(positions)
        )
        assert sparse.pairs == dense.pairs
        shuffled = [(2, 3), (1, 2), (0, 1)]
        assert (
            scheduler.schedule(positions, candidates=shuffled).pairs
            == scheduler.schedule(
                positions,
                distances=pairwise_distances(positions),
                candidates=shuffled,
            ).pairs
        )


class TestVectorizedStillFeasible:
    """The vectorized outputs must keep the old feasibility guarantees."""

    @pytest.mark.parametrize("seed", range(20))
    def test_sstar_protocol_feasible(self, seed):
        rng = np.random.default_rng(seed)
        positions = rng.random((150, 2))
        policy = PolicySStar(node_count=150, c_t=1.5, delta=1.0)
        schedule = policy.schedule(positions)
        model = ProtocolModel(delta=1.0)
        assert model.is_feasible_schedule(
            positions, schedule.pairs, schedule.transmission_range
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_greedy_protocol_feasible(self, seed):
        rng = np.random.default_rng(seed)
        positions = rng.random((80, 2))
        scheduler = GreedyMatchingScheduler(1.0 / math.sqrt(80), delta=1.0)
        schedule = scheduler.schedule(positions)
        model = ProtocolModel(delta=1.0)
        assert model.is_feasible_schedule(
            positions, schedule.pairs, schedule.transmission_range
        )
