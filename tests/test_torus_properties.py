"""Property-based tests (hypothesis) for ``geometry/torus.pairwise_distances``.

The vectorized schedulers lean entirely on the pairwise-distance matrix, so
its metric invariants -- symmetry, zero diagonal, the triangle inequality,
invariance under torus wrap -- are load-bearing for every schedule the
reproduction produces.

Coordinates are drawn on a dyadic grid (multiples of ``2**-16``) so that
the wrap arithmetic is exact in float64 and the invariance properties can
be asserted bit-for-bit rather than within a tolerance.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.torus import pairwise_distances, torus_distance, wrap

GRID = 2**16

coordinate = st.integers(min_value=0, max_value=GRID - 1).map(lambda v: v / GRID)
point = st.tuples(coordinate, coordinate)
points = st.lists(point, min_size=1, max_size=24).map(
    lambda rows: np.array(rows, dtype=float)
)
integer_shift = st.integers(min_value=-3, max_value=3)


class TestMetricInvariants:
    @given(pts=points)
    def test_symmetry(self, pts):
        distances = pairwise_distances(pts)
        np.testing.assert_array_equal(distances, distances.T)

    @given(pts=points)
    def test_zero_diagonal(self, pts):
        distances = pairwise_distances(pts)
        np.testing.assert_array_equal(np.diag(distances), 0.0)

    @given(pts=points)
    def test_nonnegative_and_bounded_by_torus_diameter(self, pts):
        """No two points on the unit torus are farther than sqrt(2)/2."""
        distances = pairwise_distances(pts)
        assert np.all(distances >= 0.0)
        assert np.all(distances <= np.sqrt(2.0) / 2.0 + 1e-12)

    @settings(max_examples=200)
    @given(pts=points)
    def test_triangle_inequality(self, pts):
        distances = pairwise_distances(pts)
        # d(i, k) <= d(i, j) + d(j, k) for every intermediate j, up to
        # float64 rounding of the sqrt/sum pipeline.
        via = distances[:, :, None] + distances[None, :, :]  # [i, j, k]
        assert np.all(distances[:, None, :] <= via + 1e-9)

    @given(pts=points)
    def test_matches_scalar_torus_distance(self, pts):
        distances = pairwise_distances(pts)
        for i in range(pts.shape[0]):
            for j in range(pts.shape[0]):
                assert distances[i, j] == torus_distance(pts[i], pts[j])


class TestWrapInvariance:
    @given(pts=points, shift_x=integer_shift, shift_y=integer_shift)
    def test_global_integer_shift_is_identity(self, pts, shift_x, shift_y):
        """Translating every point by an integer vector (then wrapping)
        leaves all pairwise distances exactly unchanged."""
        shifted = wrap(pts + np.array([shift_x, shift_y], dtype=float))
        np.testing.assert_array_equal(
            pairwise_distances(pts), pairwise_distances(shifted)
        )

    @given(pts=points, data=st.data())
    def test_per_point_integer_shift_is_identity(self, pts, data):
        """Even per-point integer offsets cancel: the metric only sees
        positions modulo 1."""
        shifts = data.draw(
            st.lists(
                st.tuples(integer_shift, integer_shift),
                min_size=pts.shape[0],
                max_size=pts.shape[0],
            )
        )
        shifted = pts + np.asarray(shifts, dtype=float)
        np.testing.assert_array_equal(
            pairwise_distances(pts), pairwise_distances(shifted)
        )

    @given(pts=points, shift_x=coordinate, shift_y=coordinate)
    def test_translation_invariance(self, pts, shift_x, shift_y):
        """The torus has no boundary: rigid translations preserve the
        metric (exactly, on the dyadic grid)."""
        translated = wrap(pts + np.array([shift_x, shift_y], dtype=float))
        np.testing.assert_array_equal(
            pairwise_distances(pts), pairwise_distances(translated)
        )
