"""Unit tests for the L-maximum-hop access extension."""

import numpy as np
import pytest

from repro.infrastructure.backbone import Backbone
from repro.routing.scheme_l import SchemeL
from repro.simulation.traffic import permutation_traffic


def build(rng, n=120, k=6, r_t=0.08, max_hops=2, c=10.0, zones=1):
    ms = rng.random((n, 2))
    bs = rng.random((k, 2))
    ms_zone = np.zeros(n, dtype=int) if zones == 1 else rng.integers(0, zones, n)
    bs_zone = np.zeros(k, dtype=int) if zones == 1 else np.arange(k) % zones
    backbone = Backbone(k, c)
    return SchemeL(ms, bs, ms_zone, bs_zone, backbone, r_t, max_hops)


class TestConstruction:
    def test_invalid_args(self, rng):
        ms, bs = rng.random((5, 2)), rng.random((2, 2))
        zones = np.zeros(5, int), np.zeros(2, int)
        backbone = Backbone(2, 1.0)
        with pytest.raises(ValueError):
            SchemeL(ms, bs, *zones, backbone, transmission_range=0.1, max_hops=0)
        with pytest.raises(ValueError):
            SchemeL(ms, bs, *zones, backbone, transmission_range=0.0)
        with pytest.raises(ValueError):
            SchemeL(ms, bs, np.zeros(4, int), np.zeros(2, int), backbone, 0.1)

    def test_l1_hops_are_direct_contacts(self, rng):
        scheme = build(rng, max_hops=1)
        finite = scheme.hop_counts[np.isfinite(scheme.hop_counts)]
        assert np.all(finite == 1.0) or finite.size == 0


class TestCoverage:
    def test_coverage_grows_with_l(self, rng):
        ms = rng.random((200, 2))
        bs = rng.random((4, 2))
        zones = np.zeros(200, int), np.zeros(4, int)
        coverages = []
        for max_hops in (1, 2, 4):
            scheme = SchemeL(
                ms, bs, *zones, Backbone(4, 1.0), transmission_range=0.06,
                max_hops=max_hops,
            )
            coverages.append(scheme.coverage)
        assert coverages[0] <= coverages[1] <= coverages[2]
        assert coverages[2] > coverages[0]

    def test_full_coverage_with_generous_budget(self, rng):
        scheme = build(rng, r_t=0.2, max_hops=8)
        assert scheme.coverage == 1.0


class TestSustainableRate:
    def test_positive_when_covered(self, rng):
        scheme = build(rng, r_t=0.2, max_hops=4)
        traffic = permutation_traffic(rng, 120)
        result = scheme.sustainable_rate(traffic)
        assert result.per_node_rate > 0
        assert result.bottleneck in ("access", "backbone")
        assert 0 < result.details["coverage"] <= 1

    def test_uncovered_gives_zero(self, rng):
        scheme = build(rng, r_t=0.01, max_hops=1)
        traffic = permutation_traffic(rng, 120)
        result = scheme.sustainable_rate(traffic)
        assert result.per_node_rate == 0.0
        assert result.bottleneck == "uncovered-ms"

    def test_hop_work_trades_against_coverage(self, rng):
        """Larger L covers more MSs but each served packet costs more
        transmissions: with everyone already covered at L=1, raising L
        cannot raise the rate."""
        ms = np.random.default_rng(0).random((150, 2))
        bs = np.random.default_rng(1).random((12, 2))
        zones = np.zeros(150, int), np.zeros(12, int)
        traffic = permutation_traffic(np.random.default_rng(2), 150)
        rates = {}
        for max_hops in (2, 4):
            scheme = SchemeL(
                ms, bs, *zones, Backbone(12, 100.0), transmission_range=0.25,
                max_hops=max_hops,
            )
            assert scheme.coverage == 1.0
            rates[max_hops] = scheme.sustainable_rate(traffic).per_node_rate
        assert rates[4] <= rates[2] * 1.5  # no miracle from extra hops

    def test_delay_proxy_constant_in_n(self):
        """The access path length (the [9] delay claim) stays <= L as n
        grows, unlike scheme A's Theta(f) routes."""
        for n in (100, 400):
            rng = np.random.default_rng(n)
            scheme = build(rng, n=n, k=8, r_t=0.15, max_hops=3)
            finite = scheme.hop_counts[np.isfinite(scheme.hop_counts)]
            assert finite.size > 0
            assert finite.max() <= 3

    def test_session_count_mismatch(self, rng):
        scheme = build(rng)
        with pytest.raises(ValueError):
            scheme.sustainable_rate(permutation_traffic(rng, 10))

    def test_zoned_backbone_flow(self, rng):
        scheme = build(rng, n=100, k=8, r_t=0.25, max_hops=3, zones=2, c=1e-6)
        traffic = permutation_traffic(rng, 100)
        result = scheme.sustainable_rate(traffic)
        if result.per_node_rate > 0:
            assert result.bottleneck == "backbone"
