"""Unit tests for the serve layer: index, query, regression scan, report.

Most tests fabricate manifests directly (JSON files under ``runs/``) so
they can control ``created`` / ``created_ts`` / ``digest`` / ``durations``
/ ``cached`` exactly -- including the legacy shapes recorded before those
fields existed -- without paying for real sweeps.
"""

import html.parser
import json
import os

import pytest

from repro.serve import (
    QuerySpec,
    RunIndex,
    build_report,
    detect_regressions,
    family_key,
    render_html,
    render_json,
    run_query,
    scan_records,
    write_report,
)
from repro.serve.index import RunRecord
from repro.store import RunStore


def manifest(run_id, **overrides):
    """A plausible modern manifest; keyword overrides replace whole fields
    (pass ``key=None`` via overrides to simulate its absence with
    ``{"field": REMOVE}``-style deletes handled by ``write_manifest``)."""
    base = {
        "run_id": run_id,
        "command": "sweep",
        "status": "completed",
        "created": "2026-08-08T12:00:00+0000",
        "created_ts": 1_900_000_000.0,
        "provenance": {"git_sha": "cafe" * 10, "schema_version": 1},
        "parameters": {"alpha": {"__repro__": "fraction", "value": "1/4"}},
        "config": {
            "scheme": "A",
            "n_values": [100, 200],
            "trials": 2,
            "seed": 3,
            "workers": None,
        },
        "trial_keys": ["k0", "k1"],
        "digest": "a" * 64,
        "durations": [1.0, 1.0],
        "cached": [False, False],
        "stats": {
            "trials": 2,
            "failures": 0,
            "retries": 0,
            "cache_hits": 0,
            "elapsed_seconds": 2.0,
            "workers": 1,
        },
    }
    base.update(overrides)
    return {key: value for key, value in base.items() if value is not REMOVE}


#: Sentinel: drop this field from the fabricated manifest entirely
#: (simulating manifests written before the field existed).
REMOVE = object()


def write_manifest(root, run_id, **overrides):
    runs_dir = root / RunStore.RUNS_DIR
    runs_dir.mkdir(parents=True, exist_ok=True)
    data = manifest(run_id, **overrides)
    (runs_dir / f"{run_id}.json").write_text(json.dumps(data, indent=2))
    return data


def record(run_id, **overrides):
    """An in-memory RunRecord straight from a fabricated manifest."""
    return RunRecord.from_manifest(manifest(run_id, **overrides), 0.0, 0)


class TestRunIndex:
    def test_refresh_parses_all_then_nothing(self, tmp_path):
        write_manifest(tmp_path, "run-a")
        write_manifest(tmp_path, "run-b", created_ts=1_900_000_100.0)
        index = RunIndex(tmp_path)
        first = index.refresh()
        assert first.manifests == 2 and first.parsed == 2
        second = index.refresh()
        assert second.parsed == 0 and second.removed == 0
        assert not second.changed
        assert len(index) == 2

    def test_records_newest_first_by_created_ts(self, tmp_path):
        # DST fall-back: the *string* order contradicts the epoch order
        # ("01:15:00-0500" is 45 wall-clock minutes after "01:30:00-0400").
        write_manifest(
            tmp_path, "run-early",
            created="2026-11-01T01:30:00-0400", created_ts=1000.0,
        )
        write_manifest(
            tmp_path, "run-late",
            created="2026-11-01T01:15:00-0500", created_ts=3700.0,
        )
        index = RunIndex(tmp_path)
        index.refresh()
        assert [r.run_id for r in index.records()] == ["run-early", "run-late"][::-1]

    def test_new_manifest_parsed_incrementally(self, tmp_path):
        write_manifest(tmp_path, "run-a")
        index = RunIndex(tmp_path)
        index.refresh()
        write_manifest(tmp_path, "run-b")
        stats = index.refresh()
        assert stats.parsed == 1 and stats.manifests == 2

    def test_vanished_manifest_dropped(self, tmp_path):
        write_manifest(tmp_path, "run-a")
        write_manifest(tmp_path, "run-b")
        index = RunIndex(tmp_path)
        index.refresh()
        (tmp_path / RunStore.RUNS_DIR / "run-a.json").unlink()
        stats = index.refresh()
        assert stats.removed == 1
        assert [r.run_id for r in index.records()] == ["run-b"]

    def test_modified_manifest_reparsed(self, tmp_path):
        write_manifest(tmp_path, "run-a")
        index = RunIndex(tmp_path)
        index.refresh()
        path = tmp_path / RunStore.RUNS_DIR / "run-a.json"
        write_manifest(tmp_path, "run-a", digest="b" * 64)
        os.utime(path, (path.stat().st_atime, path.stat().st_mtime + 5))
        stats = index.refresh()
        assert stats.parsed == 1
        assert index.get("run-a").digest == "b" * 64

    def test_persisted_index_reloads_without_parsing(self, tmp_path):
        write_manifest(tmp_path, "run-a")
        write_manifest(tmp_path, "run-b")
        RunIndex(tmp_path).refresh()
        assert (tmp_path / "serve" / "index.json").exists()
        fresh = RunIndex(tmp_path)
        stats = fresh.refresh()
        assert stats.parsed == 0 and len(fresh) == 2

    def test_persist_false_writes_nothing(self, tmp_path):
        write_manifest(tmp_path, "run-a")
        RunIndex(tmp_path, persist=False).refresh()
        assert not (tmp_path / "serve" / "index.json").exists()

    def test_stale_persisted_version_rebuilt(self, tmp_path):
        write_manifest(tmp_path, "run-a")
        index_path = tmp_path / "serve" / "index.json"
        index_path.parent.mkdir(parents=True)
        index_path.write_text(json.dumps({"version": -1, "entries": {}}))
        index = RunIndex(tmp_path)
        stats = index.refresh()
        assert stats.parsed == 1 and len(index) == 1

    def test_unparseable_manifest_excluded_and_remembered(self, tmp_path):
        write_manifest(tmp_path, "run-a")
        runs_dir = tmp_path / RunStore.RUNS_DIR
        (runs_dir / "broken.json").write_text("{half a manifest")
        index = RunIndex(tmp_path)
        first = index.refresh()
        assert first.parsed == 2  # attempted both
        assert [r.run_id for r in index.records()] == ["run-a"]
        second = index.refresh()
        assert second.parsed == 0  # the broken one is not retried

    def test_resolve_exact_prefix_missing_ambiguous(self, tmp_path):
        write_manifest(tmp_path, "20260808-aaaa")
        write_manifest(tmp_path, "20260808-bbbb")
        index = RunIndex(tmp_path)
        index.refresh()
        assert index.resolve("20260808-aaaa") == "20260808-aaaa"
        assert index.resolve("20260808-b") == "20260808-bbbb"
        with pytest.raises(KeyError, match="no stored run matches"):
            index.resolve("nope")
        with pytest.raises(KeyError, match="ambiguous"):
            index.resolve("20260808-")

    def test_family_ignores_worker_count_and_batch_width(self, tmp_path):
        serial = manifest("run-a")
        pooled = manifest(
            "run-b",
            config={**serial["config"], "workers": 8, "batch_trials": 64},
        )
        other_scheme = manifest(
            "run-c", config={**serial["config"], "scheme": "B"}
        )
        assert family_key(serial) == family_key(pooled)
        assert family_key(serial) != family_key(other_scheme)

    def test_fresh_throughput_excludes_cached_trials(self):
        rec = record(
            "run-a",
            durations=[2.0, 100.0],  # the 100s entry replays a cached trial
            cached=[False, True],
        )
        assert rec.fresh_trials == 1
        assert rec.cached_trials == 1
        assert rec.fresh_trials_per_second == pytest.approx(0.5)

    def test_fully_cached_run_has_no_throughput(self):
        rec = record("run-a", durations=[1.0, 1.0], cached=[True, True])
        assert rec.fresh_trials == 0
        assert rec.fresh_trials_per_second is None

    def test_legacy_manifest_without_hits_counts_all_fresh(self):
        rec = record(
            "run-a",
            cached=REMOVE,
            durations=[1.0, 1.0],
        )
        assert rec.fresh_trials == 2
        assert rec.fresh_trials_per_second == pytest.approx(1.0)

    def test_legacy_manifest_with_hits_is_unknowable(self):
        stats = manifest("x")["stats"] | {"cache_hits": 1}
        rec = record("run-a", cached=REMOVE, stats=stats)
        assert rec.fresh_trials is None
        assert rec.fresh_trials_per_second is None
        assert rec.cached_trials == 1

    def test_legacy_manifest_without_created_ts_parses_created(self, tmp_path):
        import datetime

        write_manifest(
            tmp_path, "run-legacy",
            created="2026-08-08T10:00:00+0000", created_ts=REMOVE,
        )
        index = RunIndex(tmp_path)
        index.refresh()
        rec = index.get("run-legacy")
        expected = datetime.datetime(
            2026, 8, 8, 10, 0, 0, tzinfo=datetime.timezone.utc
        ).timestamp()
        assert rec.created_ts == pytest.approx(expected)

    def test_parameter_decodes_tagged_fraction(self):
        from fractions import Fraction

        rec = record("run-a")
        assert rec.parameter("alpha") == Fraction(1, 4)
        assert rec.parameter("missing") is None


class TestQuery:
    def populate(self, tmp_path):
        write_manifest(tmp_path, "run-a", created_ts=100.0)
        write_manifest(
            tmp_path, "run-b",
            created_ts=200.0,
            config={"scheme": "B", "n_values": [4000, 8000], "seed": 3},
            parameters={
                "alpha": {"__repro__": "fraction", "value": "1/4"},
                "bs_exponent": {"__repro__": "fraction", "value": "1/2"},
            },
            digest="b" * 64,
        )
        write_manifest(
            tmp_path, "run-c",
            created_ts=300.0,
            command="figure1",
            status="partial",
            config={"n": 500, "seed": 0},
            provenance={"git_sha": "f00d" * 10, "schema_version": 2},
            digest="c" * 64,
        )
        index = RunIndex(tmp_path)
        index.refresh()
        return index

    def ids(self, index, spec):
        return [r.run_id for r in run_query(index, spec)]

    def test_empty_spec_matches_everything_newest_first(self, tmp_path):
        index = self.populate(tmp_path)
        assert self.ids(index, QuerySpec()) == ["run-c", "run-b", "run-a"]

    def test_command_filter(self, tmp_path):
        index = self.populate(tmp_path)
        assert self.ids(index, QuerySpec(command="figure1")) == ["run-c"]

    def test_scheme_filter(self, tmp_path):
        index = self.populate(tmp_path)
        assert self.ids(index, QuerySpec(scheme="B")) == ["run-b"]

    def test_status_filter(self, tmp_path):
        index = self.populate(tmp_path)
        assert self.ids(index, QuerySpec(status="partial")) == ["run-c"]

    def test_alpha_compares_as_fraction(self, tmp_path):
        index = self.populate(tmp_path)
        # "0.25" and "1/4" are the same filter value
        assert self.ids(index, QuerySpec(alpha="0.25")) == [
            "run-c", "run-b", "run-a",
        ]
        assert self.ids(index, QuerySpec(alpha="1/2")) == []

    def test_parameter_filter(self, tmp_path):
        index = self.populate(tmp_path)
        spec = QuerySpec(parameters={"bs_exponent": "0.5"})
        assert self.ids(index, spec) == ["run-b"]

    def test_min_max_n_need_one_grid_point_in_range(self, tmp_path):
        index = self.populate(tmp_path)
        assert self.ids(index, QuerySpec(min_n=4000)) == ["run-b"]
        assert self.ids(index, QuerySpec(min_n=150, max_n=600)) == [
            "run-c", "run-a",
        ]
        assert self.ids(index, QuerySpec(min_n=10_000)) == []

    def test_min_n_excludes_runs_without_grid_info(self, tmp_path):
        write_manifest(tmp_path, "run-gridless", config={"seed": 1})
        index = RunIndex(tmp_path)
        index.refresh()
        assert self.ids(index, QuerySpec(min_n=1)) == []
        assert self.ids(index, QuerySpec()) == ["run-gridless"]

    def test_digest_prefix_filter(self, tmp_path):
        index = self.populate(tmp_path)
        assert self.ids(index, QuerySpec(digest="bbbb")) == ["run-b"]

    def test_latest_schema_filter(self, tmp_path):
        index = self.populate(tmp_path)
        assert self.ids(index, QuerySpec(latest_schema=True)) == ["run-c"]

    def test_limit_truncates_newest_first(self, tmp_path):
        index = self.populate(tmp_path)
        assert self.ids(index, QuerySpec(limit=2)) == ["run-c", "run-b"]

    def test_malformed_fraction_raises(self, tmp_path):
        index = self.populate(tmp_path)
        with pytest.raises(ValueError, match="not a fraction"):
            run_query(index, QuerySpec(alpha="not-a-number"))

    def test_query_sees_runs_recorded_after_indexing(self, tmp_path):
        index = self.populate(tmp_path)
        write_manifest(tmp_path, "run-d", created_ts=400.0)
        assert self.ids(index, QuerySpec())[0] == "run-d"

    def test_spec_to_jsonable_drops_dont_cares(self):
        spec = QuerySpec(command="sweep", min_n=4000)
        assert spec.to_jsonable() == {"command": "sweep", "min_n": 4000}


class TestRegress:
    def test_identical_digests_report_ok(self):
        report = scan_records([
            record("run-a", created_ts=100.0),
            record("run-b", created_ts=200.0),
        ])
        assert report.ok
        assert report.families == 1 and report.runs == 2

    def test_digest_drift_flagged(self):
        report = scan_records([
            record("run-a", created_ts=100.0, digest="a" * 64),
            record("run-b", created_ts=200.0, digest="b" * 64),
        ])
        assert not report.ok
        (finding,) = report.regressions
        assert finding.kind == "digest-drift"
        assert finding.baseline_run == "run-a"
        assert finding.current_run == "run-b"
        assert "digest drifted" in finding.detail

    def test_different_families_never_compared(self):
        report = scan_records([
            record("run-a", created_ts=100.0, digest="a" * 64),
            record(
                "run-b", created_ts=200.0, digest="b" * 64,
                config={"scheme": "B", "n_values": [100, 200], "seed": 3},
            ),
        ])
        assert report.ok and report.families == 0

    def test_worker_count_change_still_compared(self):
        base = manifest("x")["config"]
        report = scan_records([
            record("run-a", created_ts=100.0, digest="a" * 64),
            record(
                "run-b", created_ts=200.0, digest="b" * 64,
                config={**base, "workers": 8},
            ),
        ])
        assert len(report.of_kind("digest-drift")) == 1

    def test_slowdown_flagged(self):
        report = scan_records([
            record("run-a", created_ts=100.0, durations=[0.1, 0.1]),  # 10 t/s
            record("run-b", created_ts=200.0, durations=[1.0, 1.0]),  # 1 t/s
        ])
        (finding,) = report.regressions
        assert finding.kind == "slowdown"
        assert "cached trials excluded" in finding.detail

    def test_mild_slowdown_not_flagged(self):
        report = scan_records([
            record("run-a", created_ts=100.0, durations=[0.1, 0.1]),
            record("run-b", created_ts=200.0, durations=[0.15, 0.15]),
        ])
        assert report.ok

    def test_fully_cached_rerun_is_not_a_speedup_or_slowdown(self):
        """The acceptance case: a rerun whose trials all replay the journal
        carries the *original* run's seconds in ``durations`` -- naively
        that reads as identical (or, for legacy 0.0 entries, as an
        infinite speedup) and must be excluded entirely."""
        report = scan_records([
            record("run-a", created_ts=100.0, durations=[1.0, 1.0]),
            record(
                "run-b", created_ts=200.0,
                durations=[1.0, 1.0], cached=[True, True],
                stats=manifest("x")["stats"] | {"cache_hits": 2},
            ),
        ])
        assert report.ok

    def test_cached_rerun_does_not_dilute_the_baseline(self):
        """A fully-cached middle run contributes nothing to the throughput
        baseline; a later genuinely slow run is still flagged against the
        original fresh run."""
        report = scan_records([
            record("run-a", created_ts=100.0, durations=[0.1, 0.1]),
            record(
                "run-b", created_ts=200.0,
                durations=[0.1, 0.1], cached=[True, True],
                stats=manifest("x")["stats"] | {"cache_hits": 2},
            ),
            record("run-c", created_ts=300.0, durations=[1.0, 1.0]),
        ])
        (finding,) = report.of_kind("slowdown")
        assert finding.baseline_run == "run-a"
        assert finding.current_run == "run-c"

    def test_legacy_manifest_with_hits_excluded_from_throughput(self):
        legacy_stats = manifest("x")["stats"] | {"cache_hits": 1}
        report = scan_records([
            record("run-a", created_ts=100.0, durations=[0.1, 0.1]),
            record(
                "run-b", created_ts=200.0,
                durations=[0.0, 5.0], cached=REMOVE, stats=legacy_stats,
            ),
        ])
        assert report.ok  # fresh subset unknowable: no throughput claim

    def test_single_run_families_skipped(self):
        report = scan_records([record("run-a")])
        assert report.ok and report.families == 0 and report.runs == 0

    def test_non_completed_runs_excluded_by_default(self):
        report = scan_records([
            record("run-a", created_ts=100.0, digest="a" * 64),
            record(
                "run-b", created_ts=200.0, digest="b" * 64,
                status="interrupted",
            ),
        ])
        assert report.ok and report.families == 0

    def test_statuses_none_compares_everything(self):
        report = scan_records(
            [
                record("run-a", created_ts=100.0, digest="a" * 64),
                record(
                    "run-b", created_ts=200.0, digest="b" * 64,
                    status="interrupted",
                ),
            ],
            statuses=None,
        )
        assert len(report.of_kind("digest-drift")) == 1

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError, match="slowdown_threshold"):
            scan_records([], slowdown_threshold=1.5)

    def test_detect_regressions_over_index(self, tmp_path):
        write_manifest(tmp_path, "run-a", created_ts=100.0, digest="a" * 64)
        write_manifest(tmp_path, "run-b", created_ts=200.0, digest="b" * 64)
        report = detect_regressions(RunIndex(tmp_path))
        assert len(report.of_kind("digest-drift")) == 1

    def test_report_summary_mentions_counts(self):
        report = scan_records([
            record("run-a", created_ts=100.0, digest="a" * 64),
            record("run-b", created_ts=200.0, digest="b" * 64),
        ])
        assert "1 digest drift(s)" in report.summary()
        assert report.to_jsonable()["ok"] is False


class _StrictHTML(html.parser.HTMLParser):
    """Collects the tag stream so tests can assert structural sanity."""

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.opened = []
        self.closed = []
        self.text = []

    def handle_starttag(self, tag, attrs):
        self.opened.append(tag)

    def handle_endtag(self, tag):
        self.closed.append(tag)

    def handle_data(self, data):
        self.text.append(data)


class TestReport:
    def populate(self, tmp_path):
        write_manifest(tmp_path, "run-a", created_ts=100.0)
        write_manifest(tmp_path, "run-b", created_ts=200.0)
        index = RunIndex(tmp_path)
        index.refresh()
        return index

    def test_json_report_is_strict_json(self, tmp_path):
        report = build_report(self.populate(tmp_path))
        parsed = json.loads(render_json(report))
        assert parsed["total_runs"] == 2
        assert parsed["regressions"]["ok"] is True
        assert len(parsed["families"]) == 1
        assert {run["run_id"] for run in parsed["families"][0]["runs"]} == {
            "run-a", "run-b",
        }

    def test_report_scopes_regressions_to_the_query(self, tmp_path):
        index = self.populate(tmp_path)
        write_manifest(
            tmp_path, "run-drift", created_ts=300.0, digest="b" * 64
        )
        full = build_report(index)
        assert full["regressions"]["ok"] is False
        scoped = build_report(index, QuerySpec(digest="aaaa"))
        assert scoped["regressions"]["ok"] is True

    def test_html_report_parses_and_balances(self, tmp_path):
        report = build_report(self.populate(tmp_path))
        page = render_html(report)
        parser = _StrictHTML()
        parser.feed(page)
        parser.close()
        text = "".join(parser.text)
        assert "run-a" in text and "run-b" in text
        for tag in ("html", "table", "body"):
            assert parser.opened.count(tag) == parser.closed.count(tag)

    def test_html_escapes_hostile_values(self, tmp_path):
        write_manifest(
            tmp_path, "run-evil",
            command="<script>alert(1)</script>",
        )
        index = RunIndex(tmp_path)
        index.refresh()
        page = render_html(build_report(index))
        assert "<script>alert(1)</script>" not in page
        assert "&lt;script&gt;" in page

    def test_write_report_infers_format_from_suffix(self, tmp_path):
        report = build_report(self.populate(tmp_path))
        html_path = write_report(report, tmp_path / "out" / "report.html")
        json_path = write_report(report, tmp_path / "out" / "report.json")
        assert html_path.read_text().startswith("<!DOCTYPE html>")
        assert json.loads(json_path.read_text())["title"] == "repro results"

    def test_write_report_rejects_unknown_format(self, tmp_path):
        report = build_report(self.populate(tmp_path))
        with pytest.raises(ValueError, match="format"):
            write_report(report, tmp_path / "report.json", fmt="pdf")


class TestStoreIntegration:
    """The serve layer over manifests written by the real RunStore."""

    def test_store_serve_index_is_shared_and_resolves(self, tmp_path):
        store = RunStore(tmp_path)
        run_id = store.record_run("sweep", digest="a" * 64)
        index = store.serve_index()
        assert index is store.serve_index()
        index.refresh()
        assert index.resolve(run_id[:14]) == run_id

    def test_recorded_cached_mask_reaches_the_index(self, tmp_path):
        store = RunStore(tmp_path)
        run_id = store.record_run(
            "sweep",
            durations=[0.5, 3.0],
            cached=[False, True],
        )
        index = store.serve_index()
        index.refresh()
        rec = index.get(run_id)
        assert rec.fresh_trials == 1
        assert rec.fresh_trials_per_second == pytest.approx(2.0)
