"""Unit tests for parameter validation and regime classification."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.order import Order
from repro.core.regimes import InvalidParameters, MobilityRegime, NetworkParameters


def strong_params(**overrides):
    kwargs = dict(alpha="1/4", cluster_exponent=1)
    kwargs.update(overrides)
    return NetworkParameters(**kwargs)


def weak_params(**overrides):
    kwargs = dict(
        alpha="1/2", cluster_exponent="1/2", cluster_radius_exponent="1/2"
    )
    kwargs.update(overrides)
    return NetworkParameters(**kwargs)


def trivial_params(**overrides):
    kwargs = dict(
        alpha="3/4",
        cluster_exponent="1/2",
        cluster_radius_exponent="3/8",
        validate=False,
    )
    kwargs.update(overrides)
    return NetworkParameters(**kwargs)


class TestValidation:
    def test_valid_defaults(self):
        assert strong_params().constraint_violations() == []

    def test_alpha_out_of_range(self):
        with pytest.raises(InvalidParameters):
            NetworkParameters(alpha="3/4")

    def test_alpha_negative(self):
        with pytest.raises(InvalidParameters):
            NetworkParameters(alpha=-1)

    def test_cluster_exponent_out_of_range(self):
        with pytest.raises(InvalidParameters):
            NetworkParameters(alpha="1/4", cluster_exponent=2)

    def test_radius_exceeds_alpha(self):
        with pytest.raises(InvalidParameters):
            NetworkParameters(
                alpha="1/4", cluster_exponent="1/4", cluster_radius_exponent="1/2"
            )

    def test_overlapping_clusters_rejected(self):
        # M - 2R >= 0 with M < 1 must be rejected
        with pytest.raises(InvalidParameters):
            NetworkParameters(
                alpha="1/2", cluster_exponent="1/2", cluster_radius_exponent="1/8"
            )

    def test_uniform_home_points_need_no_radius(self):
        params = NetworkParameters(alpha="1/4", cluster_exponent=1)
        assert params.constraint_violations() == []

    def test_k_above_n_rejected(self):
        with pytest.raises(InvalidParameters):
            NetworkParameters(alpha="1/4", bs_exponent="3/2")

    def test_negative_k_rejected(self):
        with pytest.raises(InvalidParameters):
            NetworkParameters(alpha="1/4", bs_exponent=-1)

    def test_k_must_exceed_m_for_clustered(self):
        with pytest.raises(InvalidParameters):
            NetworkParameters(
                alpha="1/2",
                cluster_exponent="1/2",
                cluster_radius_exponent="1/2",
                bs_exponent="1/4",
            )

    def test_validate_false_bypasses(self):
        params = NetworkParameters(alpha="3/4", validate=False)
        assert params.constraint_violations()  # still reported, not raised


class TestDerivedOrders:
    def test_f(self):
        assert strong_params().f == Order("1/4")

    def test_gamma_with_clusters(self):
        assert weak_params().gamma == Order("-1/2", 1)

    def test_gamma_constant_clusters(self):
        params = NetworkParameters(
            alpha=0, cluster_exponent=0, cluster_radius_exponent=0, validate=False
        )
        assert params.gamma == Order.one()

    def test_gamma_tilde(self):
        # M=1/2, R=1/2: exponent -2R-(1-M) = -3/2, one log factor
        assert weak_params().gamma_tilde == Order("-3/2", 1)

    def test_gamma_tilde_no_log_when_uniform(self):
        params = NetworkParameters(alpha="1/4", cluster_exponent=1)
        assert params.gamma_tilde.log_exponent == 0

    def test_mobility_strength(self):
        # f*sqrt(gamma) = n^{1/4} * n^{-1/2} log^{1/2} = n^{-1/4} log^{1/2}
        assert strong_params().mobility_strength == Order("-1/4", "1/2")

    def test_k_requires_infrastructure(self):
        with pytest.raises(InvalidParameters):
            _ = strong_params().k

    def test_c_is_mu_c_over_k(self):
        params = strong_params(bs_exponent="7/8", backbone_exponent=1)
        assert params.c == Order("1/8")

    def test_nodes_per_cluster(self):
        assert weak_params().nodes_per_cluster == Order("1/2")


class TestClassification:
    def test_strong(self):
        assert strong_params().regime is MobilityRegime.STRONG

    def test_strong_is_uniformly_dense(self):
        assert strong_params().is_uniformly_dense

    def test_weak(self):
        assert weak_params().regime is MobilityRegime.WEAK

    def test_weak_not_uniformly_dense(self):
        assert not weak_params().is_uniformly_dense

    def test_trivial(self):
        assert trivial_params().regime is MobilityRegime.TRIVIAL

    def test_alpha_equal_half_m_is_weak(self):
        # alpha = M/2 exactly: f*sqrt(gamma) = log^{1/2} n = omega(1), so not
        # strong; the in-cluster criterion then classifies it as weak.
        params = NetworkParameters(
            alpha="1/4", cluster_exponent="1/2", cluster_radius_exponent="1/4",
            validate=False,  # M - 2R = 0 sits on the overlap boundary
        )
        assert params.regime is MobilityRegime.WEAK

    def test_boundary_case_detected(self):
        # alpha - R - (1-M)/2 = 0 exactly: the weak/trivial sliver
        params = NetworkParameters(
            alpha="1/2",
            cluster_exponent="1/2",
            cluster_radius_exponent="1/4",
            validate=False,
        )
        assert params.regime is MobilityRegime.BOUNDARY

    def test_classic_manet_special_case(self):
        # i.i.d. mobility over the whole (dense) network: m=n, f=1
        params = NetworkParameters(alpha=0, cluster_exponent=1)
        assert params.regime is MobilityRegime.STRONG

    @given(
        alpha=st.fractions(min_value=0, max_value=Fraction(1, 2), max_denominator=8),
        big_m=st.fractions(min_value=0, max_value=1, max_denominator=8),
    )
    def test_every_valid_family_classifies(self, alpha, big_m):
        big_r = alpha  # maximal allowed radius exponent
        if big_m < 1 and big_m - 2 * big_r >= 0:
            return  # would violate the overlap constraint
        params = NetworkParameters(
            alpha=alpha,
            cluster_exponent=big_m,
            cluster_radius_exponent=big_r,
        )
        assert params.regime in MobilityRegime


class TestRealization:
    def test_counts(self):
        realized = weak_params(bs_exponent="3/4").realize(256)
        assert realized.n == 256
        assert realized.m == 16
        assert realized.k == 64
        assert realized.c == pytest.approx(256 ** 0.25)
        assert realized.f == pytest.approx(16.0)
        assert realized.r == pytest.approx(1 / 16.0)

    def test_no_infrastructure(self):
        realized = strong_params().realize(100)
        assert realized.k is None
        assert realized.c is None

    def test_m_capped_at_n(self):
        realized = strong_params().realize(50)
        assert realized.m <= 50

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            strong_params().realize(1)

    def test_gamma_tilde_value(self):
        realized = weak_params().realize(400)
        assert realized.gamma_tilde > 0

    def test_describe_mentions_regime(self):
        assert "strong" in strong_params().describe()
        assert "no BSs" in strong_params().describe()
