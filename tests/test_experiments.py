"""Unit tests for the experiment harness (sweeps, Table I, figures)."""

import numpy as np


import pytest

from repro.core.capacity import Scheme, optimal_scheme
from repro.core.regimes import MobilityRegime, NetworkParameters
from repro.experiments.figure1 import (
    CLUSTERED_PARAMS,
    UNIFORM_PARAMS,
    make_panel,
)
from repro.experiments.figure2 import trace_scheme_b
from repro.experiments.figure3 import compute_figure3, simulated_spot_checks
from repro.experiments.scaling import (
    measure_rate,
    sweep_capacity,
    theory_order,
)
from repro.experiments.table1 import (
    TABLE1_ROWS,
    closed_form_table,
    measure_row,
)
from repro.utils.fitting import geometric_grid


class TestTheoryOrder:
    def test_scheme_a_is_one_over_f(self):
        params = NetworkParameters(alpha="1/4", cluster_exponent=1)
        assert float(theory_order(params, "A").poly_exponent) == -0.25

    def test_unknown_scheme(self):
        params = NetworkParameters(alpha="1/4", cluster_exponent=1)
        with pytest.raises(ValueError):
            theory_order(params, "Z")


class TestMeasureRate:
    def test_scheme_validation(self, rng):
        params = NetworkParameters(alpha="1/4", cluster_exponent=1)
        with pytest.raises(ValueError):
            measure_rate(params, 100, rng, scheme="Z")

    def test_measures_positive_rate(self, rng):
        params = NetworkParameters(alpha="1/4", cluster_exponent=1)
        result = measure_rate(params, 200, rng, scheme="A")
        assert result.per_node_rate > 0


class TestSweep:
    def test_sweep_shapes_and_fit(self):
        params = NetworkParameters(alpha="1/4", cluster_exponent=1)
        result = sweep_capacity(
            params, [100, 200, 400], scheme="A", trials=2, seed=0
        )
        assert result.rates.shape == (3,)
        assert result.fit is not None
        assert result.theory_exponent == -0.25

    def test_sweep_row_render(self):
        params = NetworkParameters(alpha="1/4", cluster_exponent=1)
        result = sweep_capacity(params, [100, 200], scheme="A", trials=1)
        row = result.row()
        assert row[0] == "A"

    def test_invalid_trials(self):
        params = NetworkParameters(alpha="1/4", cluster_exponent=1)
        with pytest.raises(ValueError):
            sweep_capacity(params, [100, 200], trials=0)


class TestTable1:
    def test_five_rows(self):
        assert len(TABLE1_ROWS) == 5

    def test_regimes_cover_table(self):
        regimes = [row.parameters.regime for row in TABLE1_ROWS]
        assert regimes.count(MobilityRegime.STRONG) == 2
        assert regimes.count(MobilityRegime.WEAK) == 2
        assert regimes.count(MobilityRegime.TRIVIAL) == 1

    def test_schemes_match_paper(self):
        schemes = [optimal_scheme(row.parameters) for row in TABLE1_ROWS]
        assert schemes == [
            Scheme.SCHEME_A,
            Scheme.SCHEME_A_PLUS_B,
            Scheme.STATIC_MULTIHOP,
            Scheme.SCHEME_B,
            Scheme.SCHEME_C,
        ]

    def test_closed_form_table_renders(self):
        text = closed_form_table()
        assert "Theta(n^-1/4)" in text
        assert "trivial" in text

    def test_measure_row_smoke(self):
        result = measure_row(TABLE1_ROWS[0], [100, 200], trials=1, seed=1)
        assert result.scheme == "A"
        assert result.fit is not None


class TestFigure1:
    def test_uniform_panel_is_uniformly_dense(self, rng):
        panel = make_panel(UNIFORM_PARAMS, 400, rng, "uniform")
        assert panel.parameters.regime is MobilityRegime.STRONG
        assert panel.field.uniformity_ratio < 10

    def test_clustered_panel_is_not(self, rng):
        panel = make_panel(CLUSTERED_PARAMS, 400, rng, "clustered")
        assert panel.parameters.regime is not MobilityRegime.STRONG
        assert panel.field.empty_fraction > 0.2

    def test_summary_text(self, rng):
        panel = make_panel(UNIFORM_PARAMS, 100, rng, "uniform")
        assert "rho_min" in panel.summary()


class TestFigure2:
    def test_trace_structure(self, rng):
        trace = trace_scheme_b(200, rng)
        lines = trace.lines()
        assert any("phase 1" in line for line in lines)
        assert any("phase 2" in line for line in lines)
        assert any("phase 3" in line for line in lines)
        assert trace.per_node_rate >= 0


class TestFigure3:
    def test_panels(self):
        figure = compute_figure3(grid_points=9)
        assert figure.left.phi == 0
        assert figure.right.phi == -0.25
        assert len(figure.lines()) > 4

    def test_spot_checks_agree_with_prediction(self):
        # the exponent gap must be wide enough for the dominance to show
        # through the constants at n = 600 (see EXPERIMENTS.md)
        checks = simulated_spot_checks(
            [("1/4", "1/4", "0"), ("1/4", "15/16", "0")], n=600, seed=3
        )
        assert checks[0].predicted_region == "mobility"
        assert checks[1].predicted_region == "infrastructure"
        for check in checks:
            assert check.agrees


class TestGeometricGridIntegration:
    def test_grid_for_sweeps(self):
        grid = geometric_grid(100, 800, 4)
        assert grid[0] == 100 and grid[-1] == 800


class TestConvergenceStudy:
    def test_windowed_slopes_structure(self):
        from repro.experiments.convergence import windowed_slopes

        params = NetworkParameters(alpha="1/4", cluster_exponent=1)
        study = windowed_slopes(
            params, [150, 300, 600, 1200], scheme="A", window=3, trials=1
        )
        assert study.window_slopes.shape[0] == 2  # two sliding windows
        assert study.theory_exponent == -0.25
        assert len(study.rows()) == 2
        assert np.isfinite(study.final_error)
        assert np.isfinite(study.drift())

    def test_window_validation(self):
        from repro.experiments.convergence import windowed_slopes

        params = NetworkParameters(alpha="1/4", cluster_exponent=1)
        with pytest.raises(ValueError):
            windowed_slopes(params, [100, 200], window=5, trials=1)
        with pytest.raises(ValueError):
            windowed_slopes(params, [100, 200], window=1, trials=1)
