"""Unit tests for torus geometry."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry.torus import (
    disk_sample,
    pairwise_distances,
    random_points,
    torus_delta,
    torus_distance,
    within_range,
    wrap,
)

points = hnp.arrays(
    float,
    st.tuples(st.integers(1, 8), st.just(2)),
    elements=st.floats(-5, 5, allow_nan=False, width=32),
)


class TestWrap:
    def test_identity_inside(self):
        p = np.array([0.3, 0.7])
        assert np.allclose(wrap(p), p)

    def test_wraps_above_and_below(self):
        assert np.allclose(wrap(np.array([1.25, -0.25])), [0.25, 0.75])

    @given(points)
    def test_always_in_unit_square(self, p):
        wrapped = wrap(p)
        assert np.all(wrapped >= 0) and np.all(wrapped < 1)


class TestDistance:
    def test_simple(self):
        d = torus_distance(np.array([0.1, 0.1]), np.array([0.4, 0.5]))
        assert d == pytest.approx(0.5)

    def test_wraparound_shorter(self):
        d = torus_distance(np.array([0.05, 0.5]), np.array([0.95, 0.5]))
        assert d == pytest.approx(0.1)

    def test_max_distance_is_half_diagonal(self):
        d = torus_distance(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        assert d == pytest.approx(np.sqrt(0.5))

    def test_broadcasting(self):
        a = np.zeros((3, 2))
        b = np.full((3, 2), 0.1)
        assert torus_distance(a, b).shape == (3,)

    @given(points)
    def test_symmetry(self, p):
        q = np.roll(p, 1, axis=0)
        assert np.allclose(torus_distance(p, q), torus_distance(q, p))

    @given(points)
    def test_invariant_under_integer_translation(self, p):
        q = np.roll(p, 1, axis=0)
        shifted = p + np.array([3.0, -2.0])
        assert np.allclose(
            torus_distance(p, q), torus_distance(shifted, q), atol=1e-6
        )

    @given(points)
    def test_delta_components_bounded(self, p):
        q = np.roll(p, 1, axis=0)
        delta = torus_delta(p, q)
        assert np.all(np.abs(delta) <= 0.5 + 1e-12)


class TestPairwise:
    def test_shape_and_diagonal(self):
        pts = np.random.default_rng(0).random((5, 2))
        matrix = pairwise_distances(pts)
        assert matrix.shape == (5, 5)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_matches_pointwise(self):
        rng = np.random.default_rng(1)
        a, b = rng.random((4, 2)), rng.random((3, 2))
        matrix = pairwise_distances(a, b)
        for i in range(4):
            for j in range(3):
                assert matrix[i, j] == pytest.approx(
                    float(torus_distance(a[i], b[j]))
                )

    def test_symmetric(self):
        pts = np.random.default_rng(2).random((6, 2))
        matrix = pairwise_distances(pts)
        assert np.allclose(matrix, matrix.T)

    def test_triangle_inequality(self):
        pts = np.random.default_rng(3).random((8, 2))
        d = pairwise_distances(pts)
        for i in range(8):
            for j in range(8):
                for k in range(8):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-9


class TestWithinRange:
    def test_thresholding(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.05, 0.0], [0.3, 0.0]])
        mask = within_range(a, b, 0.1)
        assert mask.tolist() == [[True, False]]


class TestSampling:
    def test_random_points_shape(self, rng):
        pts = random_points(rng, 10)
        assert pts.shape == (10, 2)
        assert np.all((pts >= 0) & (pts < 1))

    def test_disk_sample_radius(self, rng):
        centers = np.full((200, 2), 0.5)
        pts = disk_sample(rng, centers, 0.1)
        assert np.all(torus_distance(pts, centers) <= 0.1 + 1e-12)

    def test_disk_sample_wraps(self, rng):
        centers = np.zeros((50, 2))
        pts = disk_sample(rng, centers, 0.2)
        assert np.all((pts >= 0) & (pts < 1))
        assert np.all(torus_distance(pts, centers) <= 0.2 + 1e-12)

    def test_disk_sample_roughly_uniform(self, rng):
        # mean radius of uniform disk samples is 2R/3
        centers = np.full((4000, 2), 0.5)
        pts = disk_sample(rng, centers, 0.3)
        mean_r = float(np.mean(torus_distance(pts, centers)))
        assert mean_r == pytest.approx(0.2, rel=0.05)
