"""Wire codec and shard partitioning tests (no sockets needed)."""

import numpy as np
import pytest

from repro.core.regimes import NetworkParameters
from repro.experiments.scaling import _sweep_trial, sweep_trial_payloads
from repro.fabric.shards import partition_shards
from repro.fabric.wire import (
    WireError,
    decode_payload,
    decode_retry_policy,
    encode_payload,
    encode_retry_policy,
    request_status,
    resolve_ref,
    to_ref,
)
from repro.resilience.retry import RetryPolicy
from repro.store import TrialSeed


class TestPayloadCodec:
    def test_sweep_payload_round_trips_with_trial_seed(self):
        params = NetworkParameters(alpha="1/4", bs_exponent="1/2")
        payloads = sweep_trial_payloads(params, [64], "B", 2, seed=9)
        for payload in payloads:
            decoded = decode_payload(encode_payload(payload))
            assert decoded == payload
            assert isinstance(decoded[5], TrialSeed)
            # the seed must rebuild the exact same stream
            assert (
                decoded[5].rng().integers(1 << 30)
                == payload[5].rng().integers(1 << 30)
            )

    def test_trial_seed_nested_in_containers_round_trips(self):
        seed = TrialSeed(7, 3)
        tree = {"a": [seed, 1.5], "b": (seed, {"c": seed})}
        decoded = decode_payload(encode_payload(tree))
        assert decoded["a"][0] == seed
        assert decoded["b"][0] == seed
        assert decoded["b"][1]["c"] == seed

    def test_float_values_round_trip_exactly(self):
        value = np.float64(0.12345678901234567)
        assert decode_payload(encode_payload(value)) == value
        assert np.isnan(decode_payload(encode_payload(float("nan"))))


class TestRetryPolicyCodec:
    def test_round_trip(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_base=0.5, backoff_multiplier=3.0
        )
        assert decode_retry_policy(encode_retry_policy(policy)) == policy

    def test_wire_form_is_plain_json(self):
        import json

        encoded = encode_retry_policy(RetryPolicy())
        json.dumps(encoded)  # must not raise
        assert isinstance(encoded["retry_on"], list)


class TestCallableRefs:
    def test_sweep_trial_resolves(self):
        ref = to_ref(_sweep_trial)
        assert ref == "repro.experiments.scaling:_sweep_trial"
        assert resolve_ref(ref) is _sweep_trial

    def test_malformed_refs_are_rejected(self):
        for ref in ("no-colon", ":attr", "mod:", "mod:a.b"):
            with pytest.raises(WireError):
                resolve_ref(ref)

    def test_missing_attribute_is_a_wire_error(self):
        with pytest.raises(WireError, match="cannot resolve"):
            resolve_ref("repro.experiments.scaling:not_a_function")


class TestPartitionShards:
    def _payloads(self, count=6, seed=9):
        params = NetworkParameters(alpha="1/4", bs_exponent="1/2")
        return sweep_trial_payloads(params, [64, 128, 256], "B", 2, seed=seed)

    def test_shard_ids_are_deterministic(self):
        payloads = self._payloads()
        kwargs = dict(
            keys=None, seed=9, trial_fn_ref="m:f", validator_ref=None,
            shard_size=2,
        )
        first = partition_shards(payloads, range(6), **kwargs)
        second = partition_shards(payloads, range(6), **kwargs)
        assert [s.shard_id for s in first] == [s.shard_id for s in second]
        assert len(first) == 3
        assert all(len(s) == 2 for s in first)

    def test_shard_ids_fold_in_seed_and_membership(self):
        payloads = self._payloads()
        base = partition_shards(
            payloads, range(6), None, 9, "m:f", None, shard_size=2
        )
        other_seed = partition_shards(
            self._payloads(seed=10), range(6), None, 10, "m:f", None,
            shard_size=2,
        )
        subset = partition_shards(
            payloads, [1, 2, 3, 4], None, 9, "m:f", None, shard_size=2
        )
        assert {s.shard_id for s in base}.isdisjoint(
            {s.shard_id for s in other_seed}
        )
        assert {s.shard_id for s in base}.isdisjoint(
            {s.shard_id for s in subset}
        )

    def test_lease_message_is_json_ready(self):
        import json

        payloads = self._payloads()
        (shard,) = partition_shards(
            payloads, [0, 1], None, 9,
            "repro.experiments.scaling:_sweep_trial", None, shard_size=4,
        )
        message = shard.lease_message()
        json.dumps(message)  # wire messages must be plain JSON
        assert message["indices"] == [0, 1]
        assert message["total"] == len(payloads)
        decoded = decode_payload(message["payloads"][1])
        assert decoded == payloads[1]

    def test_rejects_bad_shard_size(self):
        with pytest.raises(ValueError, match="shard_size"):
            partition_shards([], [], None, 0, "m:f", None, shard_size=0)


class TestStatusClient:
    def test_no_coordinator_is_a_wire_error(self):
        # bind-then-close to find a port that is definitely not listening
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(WireError, match="no fabric coordinator"):
            request_status("127.0.0.1", port, timeout=0.5)
