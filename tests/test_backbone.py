"""Unit tests for the wired BS backbone."""

import math

import pytest

from repro.infrastructure.backbone import Backbone, BackboneTopology


class TestConstruction:
    def test_full_mesh_edge_count(self):
        assert Backbone(6, 1.0).edge_count == 15

    def test_ring_edge_count(self):
        assert Backbone(6, 1.0, BackboneTopology.RING).edge_count == 6

    def test_star_edge_count(self):
        assert Backbone(6, 1.0, BackboneTopology.STAR).edge_count == 5

    def test_grid_connected(self):
        backbone = Backbone(7, 1.0, BackboneTopology.GRID)
        # every BS reachable from BS 0
        for target in range(7):
            assert backbone.route(0, target)[-1] == target

    def test_single_bs(self):
        backbone = Backbone(1, 1.0)
        assert backbone.edge_count == 0
        assert backbone.aggregate_bs_bandwidth == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Backbone(0, 1.0)
        with pytest.raises(ValueError):
            Backbone(3, 0.0)

    def test_aggregate_bandwidth_full_mesh(self):
        # mu_c = (k-1) c
        assert Backbone(10, 0.5).aggregate_bs_bandwidth == pytest.approx(4.5)


class TestRouting:
    def test_full_mesh_direct(self):
        backbone = Backbone(5, 1.0)
        assert backbone.route(1, 4) == [1, 4]

    def test_self_route(self):
        assert Backbone(5, 1.0).route(2, 2) == [2]

    def test_ring_shortest_path(self):
        backbone = Backbone(8, 1.0, BackboneTopology.RING)
        assert len(backbone.route(0, 4)) == 5  # 4 hops

    def test_star_via_hub(self):
        backbone = Backbone(5, 1.0, BackboneTopology.STAR)
        assert backbone.route(2, 3) == [2, 0, 3]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Backbone(3, 1.0).route(0, 5)


class TestLoadAccounting:
    def test_add_flow_accumulates(self):
        backbone = Backbone(4, 2.0)
        backbone.add_flow(0, 1, 0.5)
        backbone.add_flow(0, 1, 0.7)
        assert backbone.max_edge_load() == pytest.approx(1.2)

    def test_negative_flow_rejected(self):
        with pytest.raises(ValueError):
            Backbone(3, 1.0).add_flow(0, 1, -1.0)

    def test_reset(self):
        backbone = Backbone(3, 1.0)
        backbone.add_flow(0, 1, 1.0)
        backbone.reset_load()
        assert backbone.max_edge_load() == 0.0

    def test_utilization_and_overload(self):
        backbone = Backbone(3, 2.0)
        backbone.add_flow(0, 1, 3.0)
        assert backbone.max_utilization() == pytest.approx(1.5)
        assert backbone.overloaded_edges() == [(0, 1)]

    def test_sustainable_scale(self):
        backbone = Backbone(3, 2.0)
        assert backbone.sustainable_scale() == math.inf
        backbone.add_flow(0, 1, 0.5)
        assert backbone.sustainable_scale() == pytest.approx(4.0)

    def test_multi_hop_flow_loads_every_edge(self):
        backbone = Backbone(5, 1.0, BackboneTopology.RING)
        backbone.add_flow(0, 2, 1.0)
        assert backbone.max_edge_load() == pytest.approx(1.0)
        assert len([e for e in backbone.edges()]) == 5


class TestSpreadFlow:
    def test_even_split(self):
        backbone = Backbone(6, 1.0)
        backbone.spread_flow([0, 1], [2, 3, 4], 6.0)
        # each of the 6 wires carries 1.0
        assert backbone.max_edge_load() == pytest.approx(1.0)

    def test_skips_self_pairs(self):
        backbone = Backbone(4, 1.0)
        backbone.spread_flow([0, 1], [1, 2], 4.0)
        # shares are 4.0/4 = 1.0; the (1,1) self-pair is dropped, so the
        # three real wires (0,1), (0,2), (1,2) carry 1.0 each
        assert backbone.max_edge_load() == pytest.approx(1.0)

    def test_empty_sets_rejected(self):
        with pytest.raises(ValueError):
            Backbone(3, 1.0).spread_flow([], [1], 1.0)


class TestTheorem5PhaseII:
    """The k^2 c scaling of backbone cut capacity."""

    def test_zone_to_zone_capacity_scales_with_k_squared(self):
        """Doubling the number of BSs per zone quadruples the wires between
        two zones, so the sustainable zone flow scales with k^2 c."""
        def max_flow(k_per_zone):
            backbone = Backbone(2 * k_per_zone, 1.0)
            src = list(range(k_per_zone))
            dst = list(range(k_per_zone, 2 * k_per_zone))
            backbone.spread_flow(src, dst, 1.0)
            return backbone.sustainable_scale()

        assert max_flow(8) / max_flow(4) == pytest.approx(4.0)
