"""Store-side resilience: journal failure records, corrupt-line quarantine,
gc compaction accounting and run-manifest status/duration sanitisation."""

import json
import math

import pytest

from repro.store import GCStats, RunStore, UnserializableValue


def _journal_lines(store):
    store.close()
    with open(store.journal_path, "r", encoding="utf-8") as handle:
        return [line.strip() for line in handle if line.strip()]


class TestUnserializableValues:
    def test_nan_value_is_tagged_and_round_trips(self, tmp_path):
        # non-finite trial *values* are legitimate science (e.g. mean delay
        # with nothing delivered): the encoder tags them instead of crashing
        store = RunStore(tmp_path / "store")
        store.put("k-nan", float("nan"), 0.1)
        store.close()
        fresh = RunStore(tmp_path / "store")
        assert math.isnan(fresh.get("k-nan").value)

    def test_nan_duration_raises_and_journals_a_failure_record(self, tmp_path):
        store = RunStore(tmp_path / "store")
        with pytest.raises(UnserializableValue) as info:
            store.put("k-bad", 1.5, float("nan"))
        assert info.value.key == "k-bad"
        records = [json.loads(line) for line in _journal_lines(store)]
        assert len(records) == 1
        assert records[0]["key"] == "k-bad"
        assert records[0]["error"] == "unserializable-value"
        assert "value" not in records[0]

    def test_inf_duration_and_unregistered_types_also_refused(self, tmp_path):
        store = RunStore(tmp_path / "store")
        with pytest.raises(UnserializableValue):
            store.put("k-inf", 1.5, float("inf"))
        with pytest.raises(UnserializableValue):
            store.put("k-obj", object(), 0.0)

    def test_loader_skips_failure_records_without_quarantining(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.put("good", 2.5, 0.1)
        with pytest.raises(UnserializableValue):
            store.put("bad", 1.5, float("nan"))
        store.close()

        fresh = RunStore(tmp_path / "store")
        assert len(fresh) == 1
        assert fresh.get("good").value == 2.5
        assert fresh.get("bad") is None
        assert fresh.skipped_lines == 1
        # a failure record is structured, not corruption
        assert fresh.quarantined_lines == 0
        assert not fresh.corrupt_path.exists()


class TestCorruptLineQuarantine:
    def _seed_store(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.put("k1", 1.0, 0.1)
        store.put("k2", 2.0, 0.2)
        store.close()
        with open(store.journal_path, "a", encoding="utf-8") as handle:
            handle.write("{truncated garbag\n")
            handle.write("[1, 2, 3]\n")
        return store

    def test_corrupt_lines_quarantined_to_sidecar(self, tmp_path):
        store = self._seed_store(tmp_path)
        fresh = RunStore(tmp_path / "store")
        assert len(fresh) == 2  # index intact
        assert fresh.quarantined_lines == 2
        with open(fresh.corrupt_path, "r", encoding="utf-8") as handle:
            sidecar = [line.strip() for line in handle if line.strip()]
        assert sidecar == ["{truncated garbag", "[1, 2, 3]"]

    def test_repeated_loads_do_not_duplicate_the_sidecar(self, tmp_path):
        self._seed_store(tmp_path)
        first = RunStore(tmp_path / "store")
        assert first.quarantined_lines == 2
        second = RunStore(tmp_path / "store")
        assert len(second) == 2
        # same corrupt content: deduplicated, nothing fresh quarantined
        assert second.quarantined_lines == 0
        with open(second.corrupt_path, "r", encoding="utf-8") as handle:
            assert sum(1 for line in handle if line.strip()) == 2

    def test_gc_compacts_corrupt_lines_out_of_the_journal(self, tmp_path):
        store = self._seed_store(tmp_path)
        reopened = RunStore(tmp_path / "store")
        stats = reopened.gc()
        assert isinstance(stats, GCStats)
        assert stats.entries_kept == 2
        assert stats.entries_dropped == 2
        assert stats.corrupt_quarantined == 2
        assert "quarantined" in stats.summary()
        # the compacted journal holds only clean records
        for line in _journal_lines(reopened):
            record = json.loads(line)
            assert record["key"] in {"k1", "k2"}
        # and the sidecar preserves the evidence
        assert reopened.corrupt_path.exists()

    def test_gc_without_corruption_reports_zero_quarantined(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.put("k", 1.0, 0.1)
        stats = store.gc()
        assert stats.corrupt_quarantined == 0
        assert "quarantined" not in stats.summary()


class TestRunManifestStatus:
    def test_status_recorded_and_defaults_to_completed(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.record_run(command="sweep")
        store.record_run(command="sweep", status="interrupted")
        statuses = sorted(run["status"] for run in store.list_runs())
        assert statuses == ["completed", "interrupted"]

    def test_non_finite_durations_sanitised(self, tmp_path):
        store = RunStore(tmp_path / "store")
        run_id = store.record_run(
            command="sweep",
            durations=[0.5, float("nan"), float("inf")],
        )
        manifest = store.load_run(run_id)
        assert manifest["durations"] == [0.5, 0.0, 0.0]
        assert all(math.isfinite(d) for d in manifest["durations"])
