"""Schema-version discipline for the persistent store.

The journal tags every entry with ``SCHEMA_VERSION`` and ignores entries
from other versions, so caches survive payload evolution safely -- but only
if the version is actually bumped when the payload shapes change.  The pin
below fails whenever a registered payload dataclass (or NetworkParameters)
gains, loses, or retypes a field without a version bump.
"""

from repro.store import SCHEMA_VERSION, schema_fingerprint

# Fingerprint of every registered payload dataclass's (name, field:type)
# signature at SCHEMA_VERSION = 1.
PINNED_FINGERPRINTS = {
    1: "39450d6f7454a2faa28bd945b3d44b4ab1c2f57499d77e4edd272e0fd6655321",
}


def test_schema_version_is_pinned():
    assert SCHEMA_VERSION in PINNED_FINGERPRINTS, (
        f"SCHEMA_VERSION={SCHEMA_VERSION} has no pinned fingerprint. Add "
        f"{SCHEMA_VERSION}: {schema_fingerprint()!r} to PINNED_FINGERPRINTS."
    )


def test_payload_change_requires_version_bump():
    actual = schema_fingerprint()
    expected = PINNED_FINGERPRINTS[SCHEMA_VERSION]
    assert actual == expected, (
        "The trial payload schema changed (a registered payload dataclass "
        "gained/lost/retyped a field) but SCHEMA_VERSION was not bumped. "
        "Stale journal entries would decode into the new shapes. Bump "
        "SCHEMA_VERSION in src/repro/store/serialize.py and pin the new "
        f"fingerprint {actual!r} in this test."
    )
