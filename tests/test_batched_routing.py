"""Bit-identity tests for the trial-batched flow kernels (schemes B/C).

The batched sweep path never builds a :class:`SchemeB`/:class:`SchemeC`
per trial; these tests pin the replacement kernels against the serial
classes on real :class:`HybridNetwork` realisations, bit-for-bit on the
canonical backend and rtol-gated on ``numpy32``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import get_backend
from repro.core.regimes import NetworkParameters
from repro.infrastructure.backbone import Backbone, BackboneTopology
from repro.routing import (
    SchemeB,
    SchemeC,
    batched_scheme_c_attach,
    batched_zone_access,
    scheme_b_flow,
    zone_pair_sessions,
)
from repro.simulation.network import HybridNetwork
from repro.store import TrialSeed

STRONG = NetworkParameters(
    alpha="1/4", cluster_exponent=1, bs_exponent="1/2", backbone_exponent=1
)
TRIVIAL_BS = NetworkParameters(
    alpha="3/4",
    cluster_exponent="1/2",
    cluster_radius_exponent="3/8",
    bs_exponent="3/4",
    backbone_exponent=1,
    validate=False,
)


def build_batch(params, n, batch, seed=123, **kwargs):
    return [
        HybridNetwork.build(params, n, TrialSeed(seed, b).rng(), **kwargs)
        for b in range(batch)
    ]


def stacked_zones(nets):
    zones = [net.scheme_b_zones() for net in nets]
    return (
        np.stack([z[0] for z in zones]),
        np.stack([z[1] for z in zones]),
    )


class TestBatchedZoneAccess:
    def test_slices_bit_identical_to_serial(self):
        nets = build_batch(STRONG, 300, 4)
        ms_zone, bs_zone = stacked_zones(nets)
        access = batched_zone_access(
            np.stack([net.home_model.points for net in nets]),
            np.stack([net.bs_positions for net in nets]),
            ms_zone,
            bs_zone,
            nets[0].shape,
            nets[0].realized.f,
            nets[0].access_transmission_range(),
        )
        assert access.shape == (4, 300)
        for b, net in enumerate(nets):
            serial = SchemeB.zone_access_vector(
                net.home_model.points,
                net.bs_positions,
                ms_zone[b],
                bs_zone[b],
                net.shape,
                net.realized.f,
                net.access_transmission_range(),
            )
            assert np.array_equal(access[b], serial)

    def test_chunk_size_invariance(self):
        nets = build_batch(STRONG, 120, 3, seed=7)
        ms_zone, bs_zone = stacked_zones(nets)
        args = (
            np.stack([net.home_model.points for net in nets]),
            np.stack([net.bs_positions for net in nets]),
            ms_zone,
            bs_zone,
            nets[0].shape,
            nets[0].realized.f,
            nets[0].access_transmission_range(),
        )
        assert np.array_equal(
            batched_zone_access(*args),
            batched_zone_access(*args, chunk_size=16),
        )

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError, match="batched access"):
            batched_zone_access(
                rng.random((10, 2)),
                rng.random((1, 4, 2)),
                np.zeros((1, 10), dtype=int),
                np.zeros((1, 4), dtype=int),
                None,
                1.0,
                0.1,
            )
        with pytest.raises(ValueError, match="batch layout"):
            batched_zone_access(
                rng.random((2, 10, 2)),
                rng.random((2, 4, 2)),
                np.zeros(10, dtype=int),
                np.zeros((2, 4), dtype=int),
                None,
                1.0,
                0.1,
            )

    def test_numpy32_within_scheme_rtol(self):
        nets = build_batch(STRONG, 150, 2, seed=11)
        ms_zone, bs_zone = stacked_zones(nets)
        args = (
            np.stack([net.home_model.points for net in nets]),
            np.stack([net.bs_positions for net in nets]),
            ms_zone,
            bs_zone,
            nets[0].shape,
            nets[0].realized.f,
            nets[0].access_transmission_range(),
        )
        backend = get_backend("numpy32")
        exact = batched_zone_access(*args)
        approx = backend.from_device(batched_zone_access(*args, backend=backend))
        assert approx.dtype == np.float32
        scale = max(float(exact.max()), 1e-30)
        assert np.allclose(
            approx,
            exact,
            rtol=backend.tolerance("scheme_rate"),
            atol=backend.tolerance("scheme_rate") * scale,
        )


class TestZonePairSessions:
    def manual_sessions(self, ms_zone, destination):
        sessions, intra = {}, 0
        for source in range(len(destination)):
            source_zone = int(ms_zone[source])
            dest_zone = int(ms_zone[destination[source]])
            if source_zone == dest_zone:
                intra += 1
                continue
            key = (source_zone, dest_zone)
            sessions[key] = sessions.get(key, 0) + 1
        return sessions, intra

    def test_matches_serial_loop_order_and_counts(self):
        for net in build_batch(STRONG, 200, 3, seed=5):
            ms_zone, _ = net.scheme_b_zones()
            destination = net.sample_traffic().destination
            got, got_intra = zone_pair_sessions(ms_zone, destination)
            want, want_intra = self.manual_sessions(ms_zone, destination)
            assert got == want
            assert list(got) == list(want)  # insertion order is bit-significant
            assert got_intra == want_intra

    def test_all_intra_zone(self):
        ms_zone = np.zeros(6, dtype=int)
        destination = np.array([1, 2, 3, 4, 5, 0])
        sessions, intra = zone_pair_sessions(ms_zone, destination)
        assert sessions == {}
        assert intra == 6

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        zones=st.integers(1, 6),
        n=st.integers(2, 48),
    )
    def test_property_matches_loop(self, seed, zones, n):
        rng = np.random.default_rng(seed)
        ms_zone = rng.integers(0, zones, size=n)
        destination = rng.permutation(n)
        got = zone_pair_sessions(ms_zone, destination)
        want = self.manual_sessions(ms_zone, destination)
        assert got[0] == want[0]
        assert list(got[0]) == list(want[0])
        assert got[1] == want[1]


class TestSchemeBFlow:
    def flow_pair(self, scheme, traffic):
        result = scheme.sustainable_rate(traffic)
        return (
            result.per_node_rate,
            result.details.get("generic_rate", result.per_node_rate),
        )

    def test_full_mesh_matches_serial(self):
        for net in build_batch(STRONG, 300, 4):
            ms_zone, bs_zone = net.scheme_b_zones()
            scheme = net.scheme_b()
            traffic = net.sample_traffic()
            got = scheme_b_flow(
                scheme.ms_access_capacity(),
                ms_zone,
                bs_zone,
                net.backbone,
                traffic.destination,
            )
            assert got == self.flow_pair(scheme, traffic)

    @pytest.mark.parametrize(
        "topology",
        [BackboneTopology.RING, BackboneTopology.STAR, BackboneTopology.GRID],
    )
    def test_sparse_backbones_match_serial(self, topology):
        # non-mesh spread_scale accumulates float loads in dict order, so
        # this is the test that pins the first-occurrence session ordering
        net = build_batch(STRONG, 260, 1, seed=31)[0]
        ms_zone, bs_zone = net.scheme_b_zones()
        backbone = Backbone(len(net.bs_positions), net.realized.c, topology)
        access = SchemeB.zone_access_vector(
            net.home_model.points,
            net.bs_positions,
            ms_zone,
            bs_zone,
            net.shape,
            net.realized.f,
            net.access_transmission_range(),
        )
        scheme = SchemeB.from_access_vector(ms_zone, bs_zone, access, backbone)
        traffic = net.sample_traffic()
        got = scheme_b_flow(access, ms_zone, bs_zone, backbone, traffic.destination)
        assert got == self.flow_pair(scheme, traffic)

    def test_zone_without_bs_is_zero(self):
        # zone 1 has sessions but no BS -> serial returns the
        # "zone-without-bs" FlowResult whose generic fallback is 0.0 too
        ms_zone = np.array([0, 0, 1, 1])
        bs_zone = np.zeros(2, dtype=int)
        backbone = Backbone(2, 1.0)
        access = np.ones(4)
        destination = np.array([2, 3, 0, 1])
        got = scheme_b_flow(access, ms_zone, bs_zone, backbone, destination)
        assert got == (0.0, 0.0)


class TestBatchedSchemeCAttach:
    def test_injected_attach_reproduces_serial_flow(self):
        nets = build_batch(TRIVIAL_BS, 220, 3, seed=17, mobility="static")
        cell, distance = batched_scheme_c_attach(
            np.stack([net.process.positions() for net in nets]),
            np.stack([net.bs_positions for net in nets]),
            np.stack([net.home_model.assignment for net in nets]),
            np.stack([net._bs_cluster_assignment() for net in nets]),
            chunk_size=SchemeC._CHUNK,
        )
        for b, net in enumerate(nets):
            serial = net.scheme_c()
            injected = SchemeC(
                ms_positions=net.process.positions(),
                bs_positions=net.bs_positions,
                ms_cluster=net.home_model.assignment,
                bs_cluster=net._bs_cluster_assignment(),
                backbone=net.backbone,
                delta=net.delta,
                attach=(cell[b], distance[b]),
            )
            traffic = net.sample_traffic()
            want = serial.sustainable_rate(traffic)
            got = injected.sustainable_rate(traffic)
            assert got.per_node_rate == want.per_node_rate
            assert got.bottleneck == want.bottleneck
            assert got.details == want.details

    def test_attach_length_validated(self, rng):
        nets = build_batch(TRIVIAL_BS, 80, 1, seed=19, mobility="static")
        net = nets[0]
        with pytest.raises(ValueError):
            SchemeC(
                ms_positions=net.process.positions(),
                bs_positions=net.bs_positions,
                ms_cluster=net.home_model.assignment,
                bs_cluster=net._bs_cluster_assignment(),
                backbone=net.backbone,
                delta=net.delta,
                attach=(np.zeros(3, dtype=int), np.zeros(3)),
            )
