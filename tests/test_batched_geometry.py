"""Bit-identity and tolerance tests for the batched geometry kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.backend import get_backend
from repro.geometry.neighbors import (
    BatchedCellGridIndex,
    CellGridIndex,
    batched_masked_nearest,
    masked_nearest,
)
from repro.geometry.torus import batched_pairwise_distances, pairwise_distances


def stack_points(rng, batch, n, k=None):
    points = rng.random((batch, n, 2))
    others = None if k is None else rng.random((batch, k, 2))
    return points, others


class TestBatchedPairwiseDistances:
    def test_slices_bit_identical_to_serial(self, rng):
        points, others = stack_points(rng, 5, 40, 17)
        out = batched_pairwise_distances(points, others)
        assert out.shape == (5, 40, 17)
        for b in range(5):
            assert np.array_equal(out[b], pairwise_distances(points[b], others[b]))

    def test_self_distances_match_serial(self, rng):
        points, _ = stack_points(rng, 3, 25)
        out = batched_pairwise_distances(points)
        for b in range(3):
            assert np.array_equal(out[b], pairwise_distances(points[b]))

    def test_width_one_batch(self, rng):
        points, _ = stack_points(rng, 1, 10)
        out = batched_pairwise_distances(points)
        assert np.array_equal(out[0], pairwise_distances(points[0]))

    @settings(max_examples=25, deadline=None)
    @given(
        points=arrays(
            np.float64,
            (3, 8, 2),
            elements=st.floats(0.0, 1.0, exclude_max=True, width=64),
        )
    )
    def test_float32_within_declared_rtol(self, points):
        backend = get_backend("numpy32")
        exact = batched_pairwise_distances(points)
        approx = backend.from_device(
            batched_pairwise_distances(points, backend=backend)
        )
        assert approx.dtype == np.float32
        # rtol gate is declared per kernel by the backend; torus distances
        # are bounded by sqrt(2)/2 so an absolute cushion of the same order
        # covers the catastrophic-cancellation-free regime
        rtol = backend.tolerance("torus_distance")
        assert np.allclose(approx, exact, rtol=rtol, atol=1e-6)


class TestBatchedCellGridIndex:
    @pytest.mark.parametrize("radius", [0.02, 0.08, 0.3, 0.9])
    def test_pairs_within_matches_serial(self, rng, radius):
        points = rng.random((4, 60, 2))
        index = BatchedCellGridIndex(points)
        batch_idx, i, j, dist = index.pairs_within(radius)
        for b in range(4):
            si, sj, sd = CellGridIndex(points[b]).pairs_within(radius)
            mask = batch_idx == b
            assert np.array_equal(i[mask], si)
            assert np.array_equal(j[mask], sj)
            assert np.array_equal(dist[mask], sd)

    def test_small_n_dense_fallback_matches(self, rng):
        points = rng.random((3, 8, 2))
        index = BatchedCellGridIndex(points)
        batch_idx, i, j, dist = index.pairs_within(0.4)
        for b in range(3):
            si, sj, sd = CellGridIndex(points[b]).pairs_within(0.4)
            mask = batch_idx == b
            assert np.array_equal(i[mask], si)
            assert np.array_equal(dist[mask], sd)

    def test_zero_radius_rejected_like_serial(self, rng):
        index = BatchedCellGridIndex(rng.random((2, 20, 2)))
        with pytest.raises(ValueError, match="radius"):
            index.pairs_within(0.0)

    def test_rejects_non_batched_shape(self, rng):
        with pytest.raises(ValueError):
            BatchedCellGridIndex(rng.random((20, 2)))

    def test_len_and_batch(self, rng):
        index = BatchedCellGridIndex(rng.random((3, 15, 2)))
        assert len(index) == 15
        assert index.batch == 3


class TestBatchedMaskedNearest:
    def test_matches_serial_per_slice(self, rng):
        batch, n, k = 4, 50, 9
        points = rng.random((batch, n, 2))
        others = rng.random((batch, k, 2))
        point_labels = rng.integers(0, 3, size=(batch, n))
        other_labels = rng.integers(0, 3, size=(batch, k))
        nearest, distance = batched_masked_nearest(
            points, others, point_labels, other_labels
        )
        for b in range(batch):
            sn, sd = masked_nearest(
                points[b], others[b], point_labels[b], other_labels[b]
            )
            assert np.array_equal(nearest[b], sn)
            assert np.array_equal(distance[b], sd)

    def test_orphan_labels_surface_as_minus_one(self, rng):
        batch, n, k = 2, 10, 4
        points = rng.random((batch, n, 2))
        others = rng.random((batch, k, 2))
        point_labels = np.full((batch, n), 7)  # no BS carries label 7
        other_labels = np.zeros((batch, k), dtype=int)
        nearest, distance = batched_masked_nearest(
            points, others, point_labels, other_labels
        )
        assert np.all(nearest == -1)
        assert np.all(np.isinf(distance))

    def test_tiny_chunks_change_nothing(self, rng):
        batch, n, k = 3, 30, 5
        points = rng.random((batch, n, 2))
        others = rng.random((batch, k, 2))
        labels_p = rng.integers(0, 2, size=(batch, n))
        labels_o = rng.integers(0, 2, size=(batch, k))
        full = batched_masked_nearest(points, others, labels_p, labels_o)
        tiny = batched_masked_nearest(
            points, others, labels_p, labels_o, chunk_size=4
        )
        assert np.array_equal(full[0], tiny[0])
        assert np.array_equal(full[1], tiny[1])
