"""Telemetry and logging behavior of :class:`repro.parallel.TrialRunner`.

The observability layer must report every trial exactly once (started +
finished/cached/failed), surface failures both as a structured warning and
as a typed event carrying the elapsed time, and never let a worker that
cannot be terminated silence the pool shutdown.
"""

import logging
import time
from types import SimpleNamespace

import pytest

from repro.observability import (
    RecordingTelemetry,
    SweepProgress,
    TrialCached,
    TrialFailedEvent,
    TrialFinished,
    TrialStarted,
    using_telemetry,
)
from repro.parallel.runner import TrialRunner


def _ok_trial(rng, payload):
    return payload * 2


def _fail_trial(rng, payload):
    raise ValueError("deliberate failure")


def _sleep_trial(rng, payload):
    time.sleep(payload)
    return payload


class FakeCache:
    """Minimal duck-typed trial cache (see TrialRunner.run)."""

    def __init__(self):
        self.data = {}

    def get(self, key):
        return self.data.get(key)

    def put(self, key, value, duration):
        self.data[key] = SimpleNamespace(value=value, duration=duration)


class TestSuccessEvents:
    def test_inline_run_emits_full_lifecycle(self):
        sink = RecordingTelemetry()
        runner = TrialRunner(_ok_trial, telemetry=sink)
        results = runner.run([1, 2, 3], seed=0)
        assert [r.value for r in results] == [2, 4, 6]
        assert [e.index for e in sink.of_type(TrialStarted)] == [0, 1, 2]
        finished = sink.of_type(TrialFinished)
        assert [e.index for e in finished] == [0, 1, 2]
        assert all(e.attempts == 1 for e in finished)
        assert all(e.duration >= 0 for e in finished)
        progress = sink.of_type(SweepProgress)
        # one announcing the run, one after each completion
        assert progress[0].done == 0 and progress[0].total == 3
        assert progress[-1].done == 3 and progress[-1].failed == 0

    def test_pool_run_reports_every_trial(self):
        sink = RecordingTelemetry()
        runner = TrialRunner(_ok_trial, workers=2, telemetry=sink)
        runner.run([1, 2, 3, 4], seed=0)
        assert sorted(e.index for e in sink.of_type(TrialStarted)) == [0, 1, 2, 3]
        assert sorted(e.index for e in sink.of_type(TrialFinished)) == [0, 1, 2, 3]
        assert sink.of_type(SweepProgress)[-1].done == 4

    def test_global_sink_is_used_when_no_telemetry_argument(self):
        sink = RecordingTelemetry()
        with using_telemetry(sink):
            TrialRunner(_ok_trial).run([7], seed=0)
        assert [e.index for e in sink.of_type(TrialFinished)] == [0]

    def test_explicit_sink_wins_over_global(self):
        explicit, ambient = RecordingTelemetry(), RecordingTelemetry()
        with using_telemetry(ambient):
            TrialRunner(_ok_trial, telemetry=explicit).run([7], seed=0)
        assert explicit.of_type(TrialFinished)
        assert not ambient.events


class TestCacheEvents:
    def run_with_cache(self, sink, cache):
        runner = TrialRunner(_ok_trial, telemetry=sink)
        return runner.run([5, 6], seed=0, cache=cache, keys=["k5", "k6"])

    def test_warm_run_emits_trial_cached(self):
        cache = FakeCache()
        self.run_with_cache(RecordingTelemetry(), cache)
        sink = RecordingTelemetry()
        results = self.run_with_cache(sink, cache)
        assert all(r.cached for r in results)
        cached = sink.of_type(TrialCached)
        assert [e.index for e in cached] == [0, 1]
        # cache hits carry the original execution's duration
        assert all(e.duration >= 0 for e in cached)
        assert not sink.of_type(TrialStarted)
        assert sink.of_type(SweepProgress)[-1].cached == 2

    def test_cold_run_emits_no_cached_events(self):
        sink = RecordingTelemetry()
        self.run_with_cache(sink, FakeCache())
        assert not sink.of_type(TrialCached)


class TestFailureEvents:
    def test_failing_trial_emits_exactly_one_trial_failed(self, caplog):
        sink = RecordingTelemetry()
        runner = TrialRunner(_fail_trial, retries=1, telemetry=sink)
        with caplog.at_level(logging.WARNING, logger="repro"):
            results = runner.run([0], seed=0)
        assert not results[0].ok
        failed = sink.of_type(TrialFailedEvent)
        assert len(failed) == 1
        assert failed[0].kind == "exception"
        assert failed[0].attempts == 2  # first run + one retry
        assert "deliberate failure" in failed[0].message
        # both attempts announced, no success event
        assert [e.attempt for e in sink.of_type(TrialStarted)] == [1, 2]
        assert not sink.of_type(TrialFinished)
        # ... and a structured warning reached the log
        assert any(
            "trial failed" in record.getMessage()
            for record in caplog.records
            if record.levelno == logging.WARNING
        )

    def test_pool_failure_emits_one_trial_failed(self):
        sink = RecordingTelemetry()
        runner = TrialRunner(_fail_trial, workers=2, retries=0, telemetry=sink)
        results = runner.run([0, 1], seed=0)
        assert all(not r.ok for r in results)
        assert sorted(e.index for e in sink.of_type(TrialFailedEvent)) == [0, 1]
        assert sink.of_type(SweepProgress)[-1].failed == 2

    def test_timeout_error_carries_elapsed_seconds(self):
        sink = RecordingTelemetry()
        runner = TrialRunner(
            _sleep_trial, timeout=0.2, retries=0, telemetry=sink
        )
        results = runner.run([5.0], seed=0)
        error = results[0].error
        assert error.kind == "timeout"
        assert error.elapsed_seconds == pytest.approx(0.2, abs=0.15)
        failed = sink.of_type(TrialFailedEvent)
        assert failed[0].elapsed_seconds == error.elapsed_seconds

    def test_exception_error_carries_elapsed_seconds(self):
        runner = TrialRunner(_fail_trial, retries=0)
        results = runner.run([0], seed=0)
        assert results[0].error.elapsed_seconds >= 0


class _StubbornProcess:
    """A pool worker whose terminate() always fails."""

    def __init__(self, pid):
        self.pid = pid

    def terminate(self):
        raise OSError("operation not permitted")


class _ObedientProcess:
    def __init__(self, pid):
        self.pid = pid
        self.terminated = False

    def terminate(self):
        self.terminated = True


class _StubExecutor:
    def __init__(self, processes):
        self._processes = {process.pid: process for process in processes}


class TestTerminateWorkers:
    def test_failure_is_logged_and_remaining_workers_still_killed(self, caplog):
        stubborn = _StubbornProcess(101)
        obedient = _ObedientProcess(202)
        with caplog.at_level(logging.WARNING, logger="repro"):
            TrialRunner._terminate_workers(_StubExecutor([stubborn, obedient]))
        warnings = [
            record.getMessage()
            for record in caplog.records
            if record.levelno == logging.WARNING
        ]
        assert any(
            "failed to terminate worker 101" in message
            and "OSError" in message
            for message in warnings
        )
        assert obedient.terminated  # best effort continued past the failure

    def test_executor_without_processes_is_a_noop(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro"):
            TrialRunner._terminate_workers(SimpleNamespace(_processes=None))
        assert not caplog.records
