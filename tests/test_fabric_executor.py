"""Fabric integration chaos tests: real coordinator, real agent processes.

The acceptance bar of the distributed layer: a sweep leased out to fabric
agents -- including one whose agents are killed or hung mid-lease, or one
that finds no agents at all -- must complete with a
:meth:`SweepResult.digest` bit-identical to a clean serial run, with zero
leaked leases, and with poison shards quarantined rather than retried
forever.
"""

import os
import pathlib
import subprocess
import sys
import threading
import time

import pytest

from repro.core.regimes import NetworkParameters
from repro.experiments.scaling import sweep_capacity
from repro.fabric import FabricExecutor
from repro.observability import (
    FabricDegraded,
    RecordingTelemetry,
    ShardQuarantined,
    using_telemetry,
)
from repro.resilience import FaultPlan, ResilienceConfig
from repro.store import RunStore

GRID = [64, 128]
TRIALS = 2
SEED = 3

_SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")


def _params():
    return NetworkParameters(alpha="1/4", bs_exponent="1/2")


def _serial_digest():
    return sweep_capacity(
        _params(), GRID, scheme="B", trials=TRIALS, seed=SEED
    ).digest()


def _agent_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


class AgentFleet:
    """Launch agent subprocesses once the embedded coordinator binds."""

    def __init__(self, executor, count, capacity=1, store_dirs=None):
        self.executor = executor
        self.count = count
        self.capacity = capacity
        self.store_dirs = store_dirs or [None] * count
        self.procs = []
        self._thread = threading.Thread(target=self._launch, daemon=True)

    def _launch(self):
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            coordinator = self.executor.last_coordinator
            if coordinator is not None and coordinator.port:
                break
            time.sleep(0.02)
        else:  # pragma: no cover - defensive
            return
        for i in range(self.count):
            argv = [
                sys.executable, "-m", "repro", "fabric", "serve-agent",
                "--port", str(coordinator.port),
                "--agent-id", f"agent-{i}",
                "--capacity", str(self.capacity),
            ]
            if self.store_dirs[i] is not None:
                argv += ["--agent-store", str(self.store_dirs[i])]
            self.procs.append(
                subprocess.Popen(argv, env=_agent_env(), cwd=_SRC)
            )

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self._thread.join(timeout=25.0)
        for proc in self.procs:
            try:
                proc.wait(timeout=15.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10.0)


class TestFabricDigestEquality:
    @pytest.mark.parametrize("agents", [2, 4])
    def test_agent_killed_mid_lease_matches_clean_serial_run(self, agents):
        reference = _serial_digest()
        # min_agents pins the warm-up: leasing must not start before the
        # whole fleet registered, or the kill may take out the only agent
        executor = FabricExecutor(
            port=0, wait_seconds=30.0, min_agents=agents, shard_size=2,
            lease_ttl=4.0, agent_ttl=3.0,
        )
        resilience = ResilienceConfig(
            fault_plan=FaultPlan.parse("agent-kill@0")
        )
        with AgentFleet(executor, agents):
            result = sweep_capacity(
                _params(), GRID, scheme="B", trials=TRIALS, seed=SEED,
                executor=executor, resilience=resilience,
            )
        assert result.digest() == reference
        assert result.stats.failures == 0
        assert not result.stats.degraded  # survivors absorbed the work
        coordinator = executor.last_coordinator
        assert coordinator.leaked() == 0
        states = {a.agent_id: a.state for a in coordinator.table.agents()}
        assert "dead" in states.values()  # someone really died
        assert "alive" in states.values()

    def test_agent_hang_mid_lease_recovers_via_lease_expiry(self):
        reference = _serial_digest()
        executor = FabricExecutor(
            port=0, wait_seconds=30.0, min_agents=2, shard_size=2,
            lease_ttl=2.5, agent_ttl=2.0,
        )
        resilience = ResilienceConfig(
            fault_plan=FaultPlan.parse("agent-hang@0")
        )
        with AgentFleet(executor, 2) as fleet:
            result = sweep_capacity(
                _params(), GRID, scheme="B", trials=TRIALS, seed=SEED,
                executor=executor, resilience=resilience,
            )
            # the hung agent never exits on its own: put it down before
            # the fleet cleanup waits on it
            coordinator = executor.last_coordinator
            hung = {
                a.agent_id
                for a in coordinator.table.agents()
                if a.state in ("dead", "drained")
            }
            for position, proc in enumerate(fleet.procs):
                if f"agent-{position}" in hung:
                    proc.kill()
        assert result.digest() == reference
        assert result.stats.failures == 0
        assert coordinator.leaked() == 0
        assert hung  # the hang really was detected and delisted


class TestFabricDegradation:
    def test_zero_agents_degrades_to_local_execution(self, caplog):
        reference = _serial_digest()
        executor = FabricExecutor(port=0, wait_seconds=0.2)
        sink = RecordingTelemetry()
        with using_telemetry(sink):
            with caplog.at_level("WARNING", logger="repro.fabric.executor"):
                result = sweep_capacity(
                    _params(), GRID, scheme="B", trials=TRIALS, seed=SEED,
                    executor=executor,
                )
        assert result.digest() == reference
        assert result.stats.degraded
        assert result.stats.failures == 0
        assert any(
            "no fabric agents" in record.message for record in caplog.records
        )
        degraded = [
            e for e in sink.events if isinstance(e, FabricDegraded)
        ]
        assert degraded and degraded[0].reason == "no_agents"
        assert degraded[0].trials == len(GRID) * TRIALS

    def test_poison_shard_quarantined_and_run_recorded_partial(self, tmp_path):
        # agent-kill@0x2: the shard holding trial 0 kills TWO distinct
        # agents -> quarantined, not retried forever; trial 0 itself was
        # streamed before each kill (first wins), trial 1 is the casualty
        executor = FabricExecutor(
            port=0, wait_seconds=30.0, min_agents=2, shard_size=2,
            lease_ttl=4.0, agent_ttl=3.0,
        )
        resilience = ResilienceConfig(
            fault_plan=FaultPlan.parse("agent-kill@0x2"),
            min_success_fraction=0.5,
        )
        sink = RecordingTelemetry()
        store = tmp_path / "store"
        with AgentFleet(executor, 2):
            with using_telemetry(sink):
                result = sweep_capacity(
                    _params(), GRID, scheme="B", trials=TRIALS, seed=SEED,
                    executor=executor, resilience=resilience,
                    store=str(store),
                )
        coordinator = executor.last_coordinator
        assert coordinator.quarantined_indices() == [0, 1]
        assert result.stats.failures == 1  # trial 1 (trial 0 streamed)
        quarantines = [
            e for e in sink.events if isinstance(e, ShardQuarantined)
        ]
        assert len(quarantines) == 1
        assert len(quarantines[0].agents) == 2
        (manifest,) = RunStore(store).list_runs()
        assert manifest["status"] == "partial"
        assert coordinator.leaked() == 0


class TestFabricCaching:
    def test_second_sweep_replays_from_agent_journals(self, tmp_path):
        # agents journal into their own stores; a later *local* sweep
        # merging those stores replays every trial without executing any
        reference = _serial_digest()
        agent_stores = [tmp_path / "agent0", tmp_path / "agent1"]
        executor = FabricExecutor(port=0, wait_seconds=20.0, shard_size=2)
        coordinator_store = tmp_path / "coord"
        with AgentFleet(executor, 2, store_dirs=agent_stores):
            first = sweep_capacity(
                _params(), GRID, scheme="B", trials=TRIALS, seed=SEED,
                executor=executor, store=str(coordinator_store),
            )
        assert first.digest() == reference
        # the coordinator journaled every merged member itself
        resumed = sweep_capacity(
            _params(), GRID, scheme="B", trials=TRIALS, seed=SEED,
            store=str(coordinator_store),
        )
        assert resumed.digest() == reference
        assert resumed.stats.cache_hits == len(GRID) * TRIALS
        # and the agent journals alone can seed a merged-store resume
        from repro.store import MergedStore

        merged = MergedStore(tmp_path / "fresh", agent_stores)
        replayed = sweep_capacity(
            _params(), GRID, scheme="B", trials=TRIALS, seed=SEED,
            store=merged,
        )
        assert replayed.digest() == reference
        assert replayed.stats.cache_hits == len(GRID) * TRIALS
