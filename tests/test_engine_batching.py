"""Engine vectorisation satellites: arrival prefetch + combined buffer.

``run()`` now draws the whole ``(slots, n)`` Bernoulli arrival matrix up
front (when the simulator's RNG is not shared with the mobility process)
and reuses one preallocated MS+BS position buffer per slot.  Both are
pure optimisations: every test here pins bit-identity against the
step-by-step path, which still draws arrivals per slot.
"""

import numpy as np
import pytest

from repro.mobility.processes import IIDAroundHome, StaticProcess
from repro.mobility.shapes import UniformDiskShape
from repro.simulation.engine import PacketRouter, SlottedSimulator
from repro.simulation.traffic import permutation_traffic
from repro.wireless.scheduler import PolicySStar


class FIFORouter(PacketRouter):
    def select_transfer(self, queue, holder, peer):
        return queue[0] if queue else None


def make_sim(seed, n=50, arrival=0.2, shared_rng=True, static=None, mobile=True):
    """One simulator; ``shared_rng`` shares the engine RNG with mobility."""
    rng = np.random.default_rng(seed)
    homes = rng.random((n, 2))
    if mobile:
        process_rng = rng if shared_rng else np.random.default_rng(seed + 1000)
        process = IIDAroundHome(homes, UniformDiskShape(1.0), 0.3, process_rng)
    else:
        process = StaticProcess(homes)
    total = n + (0 if static is None else len(static))
    traffic = permutation_traffic(rng, n)
    return SlottedSimulator(
        process=process,
        scheduler=PolicySStar(node_count=total, c_t=0.4, delta=0.5),
        router=FIFORouter(),
        traffic=traffic,
        arrival_prob=arrival,
        rng=rng,
        static_positions=static,
    )


def metrics_digest(metrics):
    return (
        metrics.created,
        metrics.delivered,
        metrics.in_flight,
        tuple(np.asarray(metrics.delays).tolist()),
        tuple(np.asarray(metrics.hop_counts).tolist()),
    )


class TestArrivalPrefetch:
    @pytest.mark.parametrize("shared_rng", [True, False])
    def test_run_matches_step_loop(self, shared_rng):
        """The prefetched arrival stream equals the per-slot stream."""
        run_sim = make_sim(3, shared_rng=shared_rng)
        step_sim = make_sim(3, shared_rng=shared_rng)
        run_metrics = run_sim.run(40)
        for _ in range(40):
            step_sim.step()
        assert metrics_digest(run_metrics) == metrics_digest(step_sim._metrics())

    def test_prefetch_skipped_when_rng_shared(self):
        sim = make_sim(4, shared_rng=True)
        sim._prefetch_arrivals(10)
        assert sim._arrival_rows is None

    def test_prefetch_used_when_rng_separate(self):
        sim = make_sim(4, shared_rng=False)
        sim._prefetch_arrivals(10)
        assert sim._arrival_rows is not None
        assert sim._arrival_rows.shape == (10, sim.ms_count)
        sim._clear_arrivals()
        assert sim._arrival_rows is None

    def test_static_process_prefetches(self):
        run_sim = make_sim(5, mobile=False)
        step_sim = make_sim(5, mobile=False)
        run_metrics = run_sim.run(25)
        for _ in range(25):
            step_sim.step()
        assert metrics_digest(run_metrics) == metrics_digest(step_sim._metrics())

    def test_consecutive_runs_continue_the_stream(self):
        """Two prefetched run() calls == one long run (stream continuity)."""
        split = make_sim(6, shared_rng=False)
        whole = make_sim(6, shared_rng=False)
        split.run(15)
        split_metrics = split.run(15)
        whole_metrics = whole.run(30)
        assert metrics_digest(split_metrics) == metrics_digest(whole_metrics)


class TestCombinedBuffer:
    def test_static_rows_preserved_across_slots(self):
        static = np.random.default_rng(0).random((7, 2))
        sim = make_sim(8, static=static)
        for _ in range(5):
            positions, _moved = sim._begin_slot()
            assert np.array_equal(positions[sim.ms_count :], static)
            sim._apply_schedule(sim._scheduler.schedule(positions))

    def test_run_with_static_matches_step_loop(self):
        static = np.random.default_rng(1).random((5, 2))
        run_sim = make_sim(9, static=static, shared_rng=False)
        step_sim = make_sim(9, static=static, shared_rng=False)
        run_metrics = run_sim.run(30)
        for _ in range(30):
            step_sim.step()
        assert metrics_digest(run_metrics) == metrics_digest(step_sim._metrics())

    def test_buffer_is_reused(self):
        static = np.random.default_rng(2).random((4, 2))
        sim = make_sim(10, static=static)
        first, _ = sim._begin_slot()
        sim._apply_schedule(sim._scheduler.schedule(first))
        second, _ = sim._begin_slot()
        sim._apply_schedule(sim._scheduler.schedule(second))
        assert first is second  # one preallocated MS+BS buffer

    def test_no_static_passthrough(self):
        sim = make_sim(11)
        positions, _ = sim._begin_slot()
        assert positions.shape == (sim.ms_count, 2)
