"""Tests for the torus cell-grid neighbor index (``geometry/neighbors``).

The index replaces dense ``O(n^2)`` distance matrices on the per-slot
scheduling hot path, and every consumer relies on its bit-identity
contract: ``pairs_within`` / ``neighbors_of`` must return exactly the
pairs a dense :func:`~repro.geometry.torus.pairwise_distances` threshold
would, with the same float distances, in the same (lexicographic) order.
Hypothesis drives randomized point sets including wrap-around clusters
straddling the torus seam and radii past the ``> 1/3`` dense-fallback
threshold.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.neighbors import (
    _SMALL_N,
    CellGridIndex,
    adjacency_lists,
    iter_distance_chunks,
    masked_nearest,
    pair_distances,
)
from repro.geometry.torus import pairwise_distances

coordinate = st.floats(
    min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False
)
point = st.tuples(coordinate, coordinate)
#: Point sets large enough to exercise the grid path (> _SMALL_N) are mixed
#: with small sets that take the dense fallback.
points = st.lists(point, min_size=1, max_size=90).map(
    lambda rows: np.array(rows, dtype=float)
)
#: Radii spanning the grid regime, the sqrt(n) resolution cap, and the
#: dense fallback past 1/3 (fewer than three cells per side).
radius = st.floats(min_value=1e-3, max_value=0.8, allow_nan=False)

#: Seam offsets in [-0.03, 0.03) around a torus edge: clusters whose
#: members straddle the wrap-around discontinuity.
seam_offset = st.floats(min_value=-0.03, max_value=0.03, allow_nan=False)
seam_points = st.lists(
    st.tuples(seam_offset, coordinate), min_size=2, max_size=80
).map(lambda rows: np.mod(np.array(rows, dtype=float), 1.0))


def _dense_pairs(pts, r):
    distances = pairwise_distances(pts)
    i, j = np.nonzero(np.triu(distances <= r, k=1))
    return i, j, distances[i, j]


def _assert_pairs_match(pts, r):
    i, j, d = CellGridIndex(pts).pairs_within(r)
    ei, ej, ed = _dense_pairs(pts, r)
    np.testing.assert_array_equal(i, ei)
    np.testing.assert_array_equal(j, ej)
    np.testing.assert_array_equal(d, ed)  # bit-identical floats


class TestPairsWithinMatchesDense:
    @settings(max_examples=150, deadline=None)
    @given(pts=points, r=radius)
    def test_random_points(self, pts, r):
        _assert_pairs_match(pts, r)

    @settings(max_examples=100, deadline=None)
    @given(pts=seam_points, r=radius)
    def test_wraparound_cluster_straddling_seam(self, pts, r):
        """Dense clusters split across x ~ 0 / x ~ 1 must pair up through
        the wrap-around stencil exactly as through ``np.round`` wrapping."""
        _assert_pairs_match(pts, r)

    @settings(max_examples=60, deadline=None)
    @given(pts=points, r=st.floats(min_value=0.34, max_value=1.5))
    def test_radius_beyond_third_uses_dense_fallback(self, pts, r):
        """Past cell side 1/3 the stencil would self-overlap; the index
        falls back to the dense matrix with identical results."""
        assert CellGridIndex(pts).resolution(r) < 3 or pts.shape[0] <= _SMALL_N
        _assert_pairs_match(pts, r)

    def test_grid_path_on_large_uniform_set(self):
        rng = np.random.default_rng(7)
        pts = rng.random((600, 2))
        for r in (0.01, 0.04, 0.11, 0.25):
            _assert_pairs_match(pts, r)

    def test_colocated_points(self):
        pts = np.full((40, 2), 0.5)
        i, j, d = CellGridIndex(pts).pairs_within(0.05)
        assert i.size == 40 * 39 // 2
        np.testing.assert_array_equal(d, 0.0)

    def test_single_point_and_empty(self):
        i, j, d = CellGridIndex(np.array([[0.2, 0.8]])).pairs_within(0.3)
        assert i.size == j.size == d.size == 0

    def test_out_of_domain_coordinates_keep_raw_distances(self):
        """Unwrapped inputs: cells come from wrapped copies but distances
        are evaluated on the raw coordinates, exactly like the dense
        kernel."""
        rng = np.random.default_rng(3)
        pts = rng.random((120, 2)) * 4.0 - 2.0
        _assert_pairs_match(pts, 0.08)


class TestNeighborsOfMatchesDense:
    @settings(max_examples=100, deadline=None)
    @given(pts=points, queries=points, r=radius)
    def test_cross_set(self, pts, queries, r):
        qi, pj, d = CellGridIndex(pts).neighbors_of(queries, r)
        dense = pairwise_distances(queries, pts)
        ei, ej = np.nonzero(dense <= r)
        np.testing.assert_array_equal(qi, ei)
        np.testing.assert_array_equal(pj, ej)
        np.testing.assert_array_equal(d, dense[ei, ej])

    def test_ms_bs_association_shape(self):
        """The MS -> BS pattern: many queries against few indexed points."""
        rng = np.random.default_rng(11)
        ms, bs = rng.random((500, 2)), rng.random((9, 2))
        qi, pj, d = CellGridIndex(bs).neighbors_of(ms, 0.2)
        dense = pairwise_distances(ms, bs)
        ei, ej = np.nonzero(dense <= 0.2)
        np.testing.assert_array_equal(qi, ei)
        np.testing.assert_array_equal(pj, ej)
        np.testing.assert_array_equal(d, dense[ei, ej])

    def test_empty_sides(self):
        index = CellGridIndex(np.empty((0, 2)))
        qi, pj, d = index.neighbors_of(np.array([[0.5, 0.5]]), 0.1)
        assert qi.size == pj.size == d.size == 0
        index = CellGridIndex(np.array([[0.5, 0.5]]))
        qi, pj, d = index.neighbors_of(np.empty((0, 2)), 0.1)
        assert qi.size == pj.size == d.size == 0


class TestIndexMechanics:
    def test_resolution_cell_side_at_least_radius(self):
        index = CellGridIndex(np.random.default_rng(0).random((1000, 2)))
        for r in (1e-6, 1e-3, 0.01, 0.0625, 0.1, 1 / 3, 0.5, 2.0):
            m = index.resolution(r)
            assert m >= 1
            # cell side 1/m >= radius unless the sqrt(n) cap bound it (or
            # the radius exceeds the whole torus, where m bottoms out at 1)
            cap = int(np.sqrt(1000)) + 1
            assert m * r <= 1.0 or m == cap or m == 1

    def test_resolution_capped_near_sqrt_n(self):
        index = CellGridIndex(np.random.default_rng(1).random((100, 2)))
        assert index.resolution(1e-9) <= 11

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            CellGridIndex(np.zeros((3, 3)))
        index = CellGridIndex(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            index.pairs_within(0.0)
        with pytest.raises(ValueError):
            index.resolution(-1.0)

    def test_grid_cached_per_resolution(self):
        index = CellGridIndex(np.random.default_rng(2).random((200, 2)))
        index.pairs_within(0.05)
        index.neighbors_of(np.array([[0.1, 0.1]]), 0.05)
        assert len(index._grids) == 1  # same m reused across query kinds

    def test_pair_distances_bit_identical_to_dense(self):
        rng = np.random.default_rng(5)
        pts = rng.random((50, 2))
        i = rng.integers(0, 50, 200)
        j = rng.integers(0, 50, 200)
        dense = pairwise_distances(pts)
        np.testing.assert_array_equal(pair_distances(pts, i, j), dense[i, j])


class TestSharedChunkHelpers:
    def test_iter_distance_chunks_covers_matrix(self):
        rng = np.random.default_rng(8)
        pts, others = rng.random((101, 2)), rng.random((13, 2))
        blocks = list(iter_distance_chunks(pts, others, chunk_size=17))
        assert [b[1].shape[0] for b in blocks] == [17] * 5 + [16]
        np.testing.assert_array_equal(
            np.vstack([b for _, b in blocks]), pairwise_distances(pts, others)
        )

    def test_iter_distance_chunks_validates_chunk_size(self):
        with pytest.raises(ValueError):
            next(iter_distance_chunks(np.zeros((2, 2)), chunk_size=0))

    @settings(max_examples=60, deadline=None)
    @given(pts=points, others=points, data=st.data())
    def test_masked_nearest_matches_bruteforce(self, pts, others, data):
        labels_p = np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, 3),
                    min_size=pts.shape[0],
                    max_size=pts.shape[0],
                )
            )
        )
        labels_o = np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, 3),
                    min_size=others.shape[0],
                    max_size=others.shape[0],
                )
            )
        )
        nearest, distance = masked_nearest(
            pts, others, labels_p, labels_o, chunk_size=7
        )
        dense = pairwise_distances(pts, others)
        masked = np.where(labels_p[:, None] == labels_o[None, :], dense, np.inf)
        best = masked.argmin(axis=1)
        best_distance = masked[np.arange(pts.shape[0]), best]
        found = np.isfinite(best_distance)
        np.testing.assert_array_equal(nearest, np.where(found, best, -1))
        np.testing.assert_array_equal(distance[found], best_distance[found])
        assert np.all(np.isinf(distance[~found]))

    def test_masked_nearest_unlabeled(self):
        rng = np.random.default_rng(9)
        pts, others = rng.random((30, 2)), rng.random((5, 2))
        nearest, distance = masked_nearest(pts, others)
        dense = pairwise_distances(pts, others)
        np.testing.assert_array_equal(nearest, dense.argmin(axis=1))
        np.testing.assert_array_equal(
            distance, dense[np.arange(30), dense.argmin(axis=1)]
        )

    def test_masked_nearest_rejects_one_sided_labels(self):
        with pytest.raises(ValueError):
            masked_nearest(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros(2), None)

    def test_adjacency_lists_symmetric(self):
        indptr, indices = adjacency_lists(
            5, np.array([0, 0, 2]), np.array([1, 3, 4])
        )
        neighbors = {
            node: sorted(indices[indptr[node] : indptr[node + 1]].tolist())
            for node in range(5)
        }
        assert neighbors == {0: [1, 3], 1: [0], 2: [4], 3: [0], 4: [2]}
