"""Equivalence battery for :class:`IncrementalCellGridIndex`.

The incremental index is only allowed to exist because of one contract:
after any sequence of ``update`` calls, ``pairs_within`` / ``neighbors_of``
are **bit-identical** -- same pairs, same lexicographic order, same float
bits -- to a fresh :class:`CellGridIndex` built from the current positions.
This suite attacks the contract from the directions where diff-based
maintenance is most likely to go wrong:

- wrap-around seam crossings (a node jumping the ``x ~ 0 / x ~ 1``
  discontinuity changes cells non-locally);
- cell-boundary grazes (coordinates landing exactly on ``k / m`` edges,
  where ``floor`` assignment must match the fresh build's);
- the dense-fallback regime ``n <= _SMALL_N`` and the ``m < 3`` large
  radius fallback, where the incremental path must defer entirely;
- in-place no-op "moves" (a node reported moved but at unchanged
  coordinates);
- the rebuild heuristic boundary (mass moves falling back to a full
  re-bucket);
- and a 50-slot :class:`MetropolisWalkAroundHome` trajectory -- the
  restricted-mobility workload the index was built for -- compared slot by
  slot.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.neighbors import (
    _SMALL_N,
    CellGridIndex,
    IncrementalCellGridIndex,
)
from repro.mobility.processes import MetropolisWalkAroundHome, StaticProcess
from repro.mobility.shapes import TruncatedGaussianShape, UniformDiskShape

coordinate = st.floats(
    min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False
)
#: Coordinates that graze cell boundaries for every resolution up to 13:
#: exact multiples of 1/m land on the floor discontinuity.
grazing_coordinate = st.builds(
    lambda m, k: k / m,
    st.integers(min_value=2, max_value=13),
    st.integers(min_value=0, max_value=12),
).filter(lambda value: 0.0 <= value < 1.0)
#: Seam-hugging coordinates within 0.03 of the wrap-around discontinuity.
seam_coordinate = st.floats(
    min_value=-0.03, max_value=0.03, allow_nan=False
).map(lambda value: value % 1.0)
destination_coordinate = st.one_of(coordinate, grazing_coordinate, seam_coordinate)
destination = st.tuples(destination_coordinate, destination_coordinate)

point = st.tuples(coordinate, coordinate)
#: Mixes the dense fallback (n <= _SMALL_N) with the grid path.
points = st.lists(point, min_size=1, max_size=90).map(
    lambda rows: np.array(rows, dtype=float)
)
#: Radii spanning the grid regime, the resolution cap and the m < 3 dense
#: fallback past 1/3.
radius = st.floats(min_value=1e-3, max_value=0.8, allow_nan=False)


def _assert_bit_identical(incremental, pts, r):
    """Every query of the incremental index equals a fresh build's, bit
    for bit."""
    fresh = CellGridIndex(pts)
    i, j, d = incremental.pairs_within(r)
    ei, ej, ed = fresh.pairs_within(r)
    np.testing.assert_array_equal(i, ei)
    np.testing.assert_array_equal(j, ej)
    np.testing.assert_array_equal(d, ed)  # float bits, not approx
    queries = pts[:: max(pts.shape[0] // 7, 1)]
    qi, pj, qd = incremental.neighbors_of(queries, r)
    fi, fj, fd = fresh.neighbors_of(queries, r)
    np.testing.assert_array_equal(qi, fi)
    np.testing.assert_array_equal(pj, fj)
    np.testing.assert_array_equal(qd, fd)


class TestIncrementalMatchesFresh:
    @settings(max_examples=200, deadline=None)
    @given(data=st.data(), pts=points, r=radius)
    def test_after_k_random_moves(self, data, pts, r):
        """The core contract: k slots of random moves (seam crossings,
        boundary grazes, no-op moves, mask and diff reporting) leave the
        incremental index bit-identical to a fresh build."""
        n = pts.shape[0]
        # rebuild_fraction = 1 forces the incremental path even when most
        # nodes move; the rebuild path gets its own test below
        index = IncrementalCellGridIndex(pts, rebuild_fraction=1.0)
        _assert_bit_identical(index, pts, r)
        current = np.array(pts)
        for _ in range(data.draw(st.integers(min_value=1, max_value=4))):
            movers = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    max_size=min(n, 8),
                    unique=True,
                )
            )
            new = current.copy()
            for node in movers:
                if data.draw(st.booleans()):
                    new[node] = data.draw(destination)
                # else: reported moved but coordinates unchanged (graze)
            if data.draw(st.booleans()):
                index.update(new, moved=np.array(movers, dtype=int))
            else:
                index.update(new)  # diff against the previous slot
            current = new
            _assert_bit_identical(index, current, r)

    @settings(max_examples=60, deadline=None)
    @given(pts=points, r=radius, seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_full_rebuild_path(self, pts, r, seed):
        """Mass moves cross the rebuild threshold: the from-scratch rebuild
        must be just as bit-identical as the diff path."""
        index = IncrementalCellGridIndex(pts, rebuild_fraction=0.5)
        index.pairs_within(r)
        new = np.random.default_rng(seed).random(pts.shape)
        index.update(new)
        assert index.rebuilds >= 1 or pts.shape[0] == 0 or np.array_equal(new, pts)
        _assert_bit_identical(index, new, r)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), r=radius)
    def test_dense_fallback_regime(self, data, r):
        """n <= _SMALL_N point sets stay on the dense fallback through
        updates."""
        small = data.draw(
            st.lists(point, min_size=1, max_size=_SMALL_N).map(
                lambda rows: np.array(rows, dtype=float)
            )
        )
        index = IncrementalCellGridIndex(small, rebuild_fraction=1.0)
        n = small.shape[0]
        for _ in range(3):
            new = small.copy()
            node = data.draw(st.integers(min_value=0, max_value=n - 1))
            new[node] = data.draw(destination)
            index.update(new)
            small = new
            _assert_bit_identical(index, small, r)

    def test_zero_radius_still_raises(self):
        index = IncrementalCellGridIndex(np.random.default_rng(0).random((50, 2)))
        with pytest.raises(ValueError):
            index.pairs_within(0.0)

    def test_update_shape_mismatch_raises(self):
        index = IncrementalCellGridIndex(np.random.default_rng(0).random((50, 2)))
        with pytest.raises(ValueError):
            index.update(np.zeros((49, 2)))

    def test_points_property_is_read_only(self):
        index = IncrementalCellGridIndex(np.random.default_rng(0).random((10, 2)))
        with pytest.raises(ValueError):
            index.points[0, 0] = 0.5

    def test_counters_track_update_modes(self):
        rng = np.random.default_rng(1)
        pts = rng.random((200, 2))
        index = IncrementalCellGridIndex(pts, rebuild_fraction=0.5)
        index.pairs_within(0.05)
        few = pts.copy()
        few[:3] += 1e-4
        index.update(few)
        assert index.updates == 1 and index.last_moved == 3
        assert not index.last_rebuild
        index.update(rng.random((200, 2)))
        assert index.rebuilds == 1 and index.last_rebuild


class TestMetropolisTrajectory:
    """The restricted-mobility workload, slot by slot for 50 slots."""

    @pytest.mark.parametrize(
        "shape,rebuild_fraction",
        [
            # the Gaussian shape rejects often -> genuine sparse moves on
            # the diff path; the disk shape accepts most proposals, and a
            # low threshold exercises the rebuild heuristic mid-trajectory
            (TruncatedGaussianShape(), 1.0),
            (UniformDiskShape(), 0.5),
        ],
    )
    def test_every_slot_matches_fresh(self, shape, rebuild_fraction):
        rng = np.random.default_rng(42)
        home = rng.random((150, 2))
        process = MetropolisWalkAroundHome(home, shape, 0.08, rng, burn_in=4)
        guard = 0.06
        positions = process.positions()
        index = IncrementalCellGridIndex(
            positions, rebuild_fraction=rebuild_fraction
        )
        for _slot in range(50):
            positions, accepted = process.step_moved()
            # the accept mask is exactly the changed-row set
            changed = np.any(positions != index.points, axis=1)
            assert not np.any(changed & ~accepted)
            index.update(positions, moved=accepted)
            _assert_bit_identical(index, positions, guard)
        assert index.updates == 50
        if rebuild_fraction < 1.0:
            # the high-acceptance disk walk must actually exercise the
            # rebuild heuristic mid-trajectory
            assert index.rebuilds > 0

    def test_static_process_reports_nothing_moved(self):
        process = StaticProcess(np.random.default_rng(5).random((30, 2)))
        positions, moved = process.step_moved()
        assert not moved.any()
        index = IncrementalCellGridIndex(positions)
        index.update(positions, moved=moved)
        assert index.last_moved == 0
        _assert_bit_identical(index, positions, 0.1)
