"""Unit tests for fitting, RNG, and table helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.fitting import fit_power_law, geometric_grid
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.tables import render_table


class TestFitPowerLaw:
    def test_exact_power_law(self):
        x = np.array([10.0, 100.0, 1000.0])
        y = 3.0 * x ** -0.5
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(-0.5)
        assert fit.prefactor == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        x = np.array([1.0, 2.0, 4.0])
        y = 2.0 * x
        fit = fit_power_law(x, y)
        assert fit.predict(8.0) == pytest.approx(16.0)

    def test_matches_tolerance(self):
        x = np.array([10.0, 100.0])
        y = x ** -1.0
        fit = fit_power_law(x, y)
        assert fit.matches(-1.0, 0.01)
        assert not fit.matches(-0.5, 0.01)

    def test_noise_widens_stderr(self, rng):
        x = np.geomspace(10, 1000, 12)
        clean = fit_power_law(x, x ** -0.5)
        noisy = fit_power_law(x, x ** -0.5 * np.exp(rng.normal(0, 0.3, 12)))
        assert noisy.stderr > clean.stderr

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0, 2.0, 3.0])

    @given(
        exponent=st.floats(-2, 2, allow_nan=False),
        prefactor=st.floats(0.1, 10, allow_nan=False),
    )
    def test_recovers_any_exact_law(self, exponent, prefactor):
        x = np.array([10.0, 31.6, 100.0, 316.0])
        y = prefactor * x ** exponent
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(exponent, abs=1e-6)


class TestGeometricGrid:
    def test_endpoints(self):
        grid = geometric_grid(100, 1000, 5)
        assert grid[0] == 100 and grid[-1] == 1000

    def test_strictly_increasing(self):
        grid = geometric_grid(10, 10000, 12)
        assert np.all(np.diff(grid) > 0)

    def test_dedup_small_ranges(self):
        grid = geometric_grid(3, 5, 10)
        assert len(grid) == len(set(grid.tolist()))

    def test_invalid(self):
        with pytest.raises(ValueError):
            geometric_grid(10, 5, 3)
        with pytest.raises(ValueError):
            geometric_grid(10, 100, 1)


class TestRng:
    def test_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_spawned_streams_differ(self):
        streams = list(spawn_rngs(0, 3))
        values = [stream.random() for stream in streams]
        assert len(set(values)) == 3

    def test_spawn_reproducible(self):
        a = [g.random() for g in spawn_rngs(5, 3)]
        b = [g.random() for g in spawn_rngs(5, 3)]
        assert a == b

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            list(spawn_rngs(0, 0))


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "b"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]

    def test_empty_rows(self):
        text = render_table(["col"], [])
        assert "col" in text

    def test_stringifies_values(self):
        text = render_table(["x"], [[1.5], [None]])
        assert "1.5" in text and "None" in text
