"""Unit tests for the slotted packet simulator."""

import numpy as np
import pytest

from repro.mobility.processes import IIDAroundHome
from repro.mobility.shapes import UniformDiskShape
from repro.simulation.engine import Packet, PacketRouter, SlottedSimulator
from repro.simulation.traffic import permutation_traffic
from repro.wireless.scheduler import PolicySStar


class AlwaysDeliverRouter(PacketRouter):
    """Hands any packet to any peer; delivery only at the destination."""

    def select_transfer(self, queue, holder, peer):
        return queue[0] if queue else None


def make_sim(rng, n=60, arrival=0.1, router=None, static=None):
    homes = rng.random((n, 2))
    process = IIDAroundHome(homes, UniformDiskShape(1.0), 0.3, rng)
    total = n + (0 if static is None else len(static))
    scheduler = PolicySStar(node_count=total, c_t=0.4, delta=0.5)
    traffic = permutation_traffic(rng, n)
    return SlottedSimulator(
        process=process,
        scheduler=scheduler,
        router=router or AlwaysDeliverRouter(),
        traffic=traffic,
        arrival_prob=arrival,
        rng=rng,
        static_positions=static,
    )


class TestConstruction:
    def test_invalid_arrival(self, rng):
        with pytest.raises(ValueError):
            make_sim(rng, arrival=1.5)

    def test_traffic_size_mismatch(self, rng):
        homes = rng.random((10, 2))
        process = IIDAroundHome(homes, UniformDiskShape(1.0), 0.3, rng)
        traffic = permutation_traffic(rng, 20)
        with pytest.raises(ValueError):
            SlottedSimulator(
                process, PolicySStar(10), AlwaysDeliverRouter(), traffic, 0.1, rng
            )


class TestConservation:
    def test_packets_conserved(self, rng):
        sim = make_sim(rng)
        metrics = sim.run(40)
        assert metrics.created == metrics.delivered + metrics.in_flight

    def test_zero_arrivals_nothing_happens(self, rng):
        sim = make_sim(rng, arrival=0.0)
        metrics = sim.run(10)
        assert metrics.created == 0
        assert metrics.delivered == 0

    def test_slot_counter(self, rng):
        sim = make_sim(rng)
        metrics = sim.run(7)
        assert metrics.slots == 7
        metrics = sim.run(3)
        assert metrics.slots == 10

    def test_invalid_slots(self, rng):
        with pytest.raises(ValueError):
            make_sim(rng).run(0)


class TestDelivery:
    def test_packets_eventually_delivered(self, rng):
        sim = make_sim(rng, n=80, arrival=0.02)
        metrics = sim.run(300)
        assert metrics.delivered > 0
        assert metrics.per_node_throughput > 0

    def test_delays_non_negative(self, rng):
        sim = make_sim(rng, n=80, arrival=0.05)
        metrics = sim.run(200)
        assert np.all(metrics.delays >= 0)

    def test_hops_positive_for_delivered(self, rng):
        sim = make_sim(rng, n=80, arrival=0.05)
        metrics = sim.run(200)
        if metrics.hop_counts.size:
            assert np.all(metrics.hop_counts >= 1)


class TestMetrics:
    def test_summary_renders(self, rng):
        metrics = make_sim(rng).run(20)
        text = metrics.summary()
        assert "throughput" in text

    def test_delivery_ratio_bounds(self, rng):
        metrics = make_sim(rng, arrival=0.1).run(50)
        assert 0 <= metrics.delivery_ratio <= 1

    def test_empty_metrics_are_nan(self, rng):
        metrics = make_sim(rng, arrival=0.0).run(5)
        assert np.isnan(metrics.mean_delay)
        assert np.isnan(metrics.mean_hops)
        assert metrics.delivery_ratio == 0.0
