"""Unit tests for routing scheme B (Definition 12 / Theorems 5 & 7)."""

import numpy as np
import pytest

from repro.infrastructure.backbone import Backbone
from repro.mobility.shapes import UniformDiskShape
from repro.routing.scheme_b import SchemeB
from repro.simulation.traffic import PermutationTraffic, permutation_traffic

SHAPE = UniformDiskShape(1.0)


def build_scheme(
    rng, n=120, k=24, cells_per_side=2, f=4.0, c=1.0, r_t=None
):
    homes = rng.random((n, 2))
    bs = rng.random((k, 2))
    ms_zone, bs_zone, _ = SchemeB.squarelet_zones(homes, bs, cells_per_side)
    r_t = r_t if r_t is not None else 0.4 / np.sqrt(n + k)
    access = SchemeB.access_matrix(homes, bs, SHAPE, f, r_t)
    backbone = Backbone(k, c)
    return SchemeB(ms_zone, bs_zone, access, backbone)


class TestConstruction:
    def test_shape_mismatch_rejected(self, rng):
        homes = rng.random((10, 2))
        bs = rng.random((4, 2))
        access = np.ones((10, 4))
        backbone = Backbone(4, 1.0)
        with pytest.raises(ValueError):
            SchemeB(np.zeros(9, int), np.zeros(4, int), access, backbone)
        with pytest.raises(ValueError):
            SchemeB(np.zeros(10, int), np.zeros(3, int), access, backbone)
        with pytest.raises(ValueError):
            SchemeB(np.zeros(10, int), np.zeros(4, int), access, Backbone(5, 1.0))

    def test_squarelet_zones(self, rng):
        homes = rng.random((30, 2))
        bs = rng.random((8, 2))
        ms_zone, bs_zone, tess = SchemeB.squarelet_zones(homes, bs, 3)
        assert ms_zone.shape == (30,)
        assert bs_zone.shape == (8,)
        assert tess.cell_count == 9

    def test_access_matrix_shape_and_support(self, rng):
        homes = rng.random((20, 2))
        bs = rng.random((5, 2))
        access = SchemeB.access_matrix(homes, bs, SHAPE, 4.0, 0.05)
        assert access.shape == (20, 5)
        assert np.all(access >= 0)


class TestAccessCapacity:
    def test_only_same_zone_bs_counted(self, rng):
        homes = np.array([[0.1, 0.1], [0.9, 0.9]])
        bs = np.array([[0.15, 0.1], [0.85, 0.9]])
        ms_zone = np.array([0, 1])
        bs_zone = np.array([0, 1])
        access = np.array([[1.0, 1.0], [1.0, 1.0]])
        scheme = SchemeB(ms_zone, bs_zone, access, Backbone(2, 1.0))
        assert np.allclose(scheme.ms_access_capacity(), [1.0, 1.0])

    def test_bs_set(self, rng):
        scheme = build_scheme(rng)
        all_bs = np.concatenate(
            [scheme.bs_set(z) for z in range(4)]
        )
        assert sorted(all_bs.tolist()) == list(range(24))


class TestSessionRoute:
    def test_route_structure(self, rng):
        scheme = build_scheme(rng)
        route = scheme.session_route(0, 1)
        assert {"source", "destination", "source_zone", "destination_zone",
                "phase1_bs", "phase3_bs", "backbone_wires"} <= set(route)

    def test_same_zone_no_backbone(self):
        ms_zone = np.array([0, 0])
        bs_zone = np.array([0])
        access = np.ones((2, 1))
        scheme = SchemeB(ms_zone, bs_zone, access, Backbone(1, 1.0))
        assert scheme.session_route(0, 1)["backbone_wires"] == 0


class TestSustainableRate:
    def test_positive_with_dense_bs(self, rng):
        scheme = build_scheme(rng, n=150, k=60, f=2.0, r_t=0.05)
        traffic = permutation_traffic(rng, 150)
        result = scheme.sustainable_rate(traffic)
        assert result.per_node_rate > 0

    def test_bottleneck_tags(self, rng):
        scheme = build_scheme(rng, n=150, k=60, f=2.0, r_t=0.05)
        traffic = permutation_traffic(rng, 150)
        result = scheme.sustainable_rate(traffic)
        assert result.bottleneck in ("access", "backbone", "zone-without-bs")

    def test_zone_without_bs_gives_zero(self):
        # two zones, all BSs in zone 0, session crossing into zone 1
        ms_zone = np.array([0, 1])
        bs_zone = np.array([0, 0])
        access = np.ones((2, 2))
        scheme = SchemeB(ms_zone, bs_zone, access, Backbone(2, 1.0))
        traffic = PermutationTraffic(np.array([1, 0]))
        result = scheme.sustainable_rate(traffic)
        assert result.per_node_rate == 0.0
        assert result.bottleneck == "zone-without-bs"

    def test_starved_backbone_binds(self):
        """With tiny wire capacity the backbone becomes the bottleneck.
        f = 2 makes the mobility disk cover the whole zone, so every MS has
        positive access capacity and the comparison is meaningful."""
        rich = build_scheme(np.random.default_rng(11), c=10.0, k=60, f=2.0, r_t=0.05)
        poor = build_scheme(np.random.default_rng(11), c=1e-6, k=60, f=2.0, r_t=0.05)
        traffic = permutation_traffic(np.random.default_rng(3), 120)
        assert poor.sustainable_rate(traffic).bottleneck == "backbone"
        assert rich.sustainable_rate(traffic).bottleneck == "access"
        assert poor.sustainable_rate(traffic).per_node_rate < \
            rich.sustainable_rate(traffic).per_node_rate

    def test_backbone_rate_scales_with_c(self, rng):
        """In the backbone-limited region the rate is proportional to c."""
        seed = 99
        def rate(c):
            scheme = build_scheme(
                np.random.default_rng(seed), c=c, k=60, r_t=0.05
            )
            traffic = permutation_traffic(np.random.default_rng(5), 120)
            result = scheme.sustainable_rate(traffic)
            assert result.bottleneck == "backbone"
            return result.per_node_rate

        assert rate(2e-5) / rate(1e-5) == pytest.approx(2.0, rel=1e-6)

    def test_session_count_mismatch(self, rng):
        scheme = build_scheme(rng)
        with pytest.raises(ValueError):
            scheme.sustainable_rate(permutation_traffic(rng, 10))

    def test_access_rate_is_half_min_capacity(self, rng):
        scheme = build_scheme(rng, n=100, k=80, r_t=0.08)
        traffic = permutation_traffic(rng, 100)
        result = scheme.sustainable_rate(traffic)
        expected = float(scheme.ms_access_capacity().min()) / 2.0
        assert result.details["access_rate"] == pytest.approx(expected)
