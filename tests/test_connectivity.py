"""Unit tests for connectivity criteria (Gupta-Kumar range; Lemma 10)."""

import math

import numpy as np
import pytest

from repro.mobility.clustered import place_home_points
from repro.wireless.connectivity import (
    connected_component_count,
    critical_range,
    is_connected,
    minimum_connecting_range,
)


class TestCriticalRange:
    def test_formula(self):
        assert critical_range(100) == pytest.approx(
            math.sqrt(math.log(100) / (math.pi * 100))
        )

    def test_decreasing_in_n(self):
        assert critical_range(1000) < critical_range(100)

    def test_invalid(self):
        with pytest.raises(ValueError):
            critical_range(1)


class TestConnectivityChecks:
    def test_two_points(self):
        pts = np.array([[0.1, 0.1], [0.2, 0.1]])
        assert is_connected(pts, 0.15)
        assert not is_connected(pts, 0.05)

    def test_component_count(self):
        pts = np.array([[0.1, 0.1], [0.12, 0.1], [0.8, 0.8]])
        assert connected_component_count(pts, 0.05) == 2

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            is_connected(np.zeros((2, 2)), 0.0)

    def test_uniform_nodes_connect_at_twice_critical(self, rng):
        n = 500
        pts = rng.random((n, 2))
        assert is_connected(pts, 2.0 * critical_range(n))

    def test_uniform_nodes_disconnect_well_below_critical(self, rng):
        n = 500
        pts = rng.random((n, 2))
        assert not is_connected(pts, 0.2 * critical_range(n))


class TestMinimumConnectingRange:
    def test_trivial_cases(self):
        assert minimum_connecting_range(np.zeros((1, 2))) == 0.0

    def test_collinear(self):
        pts = np.array([[0.1, 0.5], [0.3, 0.5], [0.6, 0.5]])
        assert minimum_connecting_range(pts) == pytest.approx(0.3)

    def test_connect_exactly_at_mst_edge(self, rng):
        pts = rng.random((60, 2))
        r = minimum_connecting_range(pts)
        assert is_connected(pts, r * 1.0001)
        assert not is_connected(pts, r * 0.9999)

    def test_uses_torus_metric(self):
        pts = np.array([[0.02, 0.5], [0.98, 0.5]])
        assert minimum_connecting_range(pts) == pytest.approx(0.04)


class TestLemma10:
    """Clustered home-points force a much larger connecting range."""

    def test_clustering_raises_connecting_range(self, rng):
        n = 600
        uniform = place_home_points(rng, n=n, m=n, radius=0.0)
        clustered = place_home_points(rng, n=n, m=6, radius=0.02)
        assert minimum_connecting_range(clustered.points) > 2 * \
            minimum_connecting_range(uniform.points)

    def test_cluster_range_tracks_gamma(self, rng):
        """The connecting range of a clustered layout is driven by the
        cluster-center spacing sqrt(gamma) = sqrt(log m / m), not by n."""
        n, m = 800, 8
        model = place_home_points(rng, n=n, m=m, radius=0.005)
        measured = minimum_connecting_range(model.points)
        gamma = math.log(m) / m
        # same order: within a factor of ~4 of sqrt(gamma)/sqrt(pi)
        assert measured > 0.1 * math.sqrt(gamma)
        assert measured < 4.0 * math.sqrt(gamma)
