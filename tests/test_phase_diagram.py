"""Unit tests for the Figure-3 phase diagrams."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.phase_diagram import (
    capacity_exponent,
    compute_phase_diagram,
    dominance,
    mobility_boundary,
)

alphas = st.fractions(min_value=0, max_value=Fraction(1, 2), max_denominator=8)
ks = st.fractions(min_value=0, max_value=1, max_denominator=8)
phis = st.fractions(min_value=-1, max_value=2, max_denominator=4)


class TestCapacityExponent:
    def test_known_corner_values(self):
        # dense network, no useful BSs: Theta(1)
        assert capacity_exponent(0, 0, 1) == 0
        # extended network, k = n, phi >= 0: max(-1/2, 0) = 0
        assert capacity_exponent("1/2", 1, 1) == 0
        # the paper's left-panel annotation: n^{-1/2} at alpha=1/2, K=1/2
        assert capacity_exponent("1/2", "1/2", 1) == Fraction(-1, 2)

    def test_backbone_starved_panel(self):
        # phi = -1/4 at K = 1, alpha = 1/2: infra term n^{K+phi-1} = n^{-1/4}
        # beats mobility n^{-1/2}
        assert capacity_exponent("1/2", 1, "-1/4") == Fraction(-1, 4)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            capacity_exponent("3/4", 0, 1)
        with pytest.raises(ValueError):
            capacity_exponent(0, 2, 1)

    @given(alpha=alphas, big_k=ks, phi=phis)
    def test_exponent_formula(self, alpha, big_k, phi):
        expected = max(-alpha, min(big_k + phi - 1, big_k - 1))
        assert capacity_exponent(alpha, big_k, phi) == expected

    @given(alpha=alphas, big_k=ks, phi=phis)
    def test_capacity_never_positive_is_false_but_bounded(self, alpha, big_k, phi):
        # per-node capacity cannot exceed Theta(1) when phi <= 1 and K <= 1
        if phi <= 1:
            assert capacity_exponent(alpha, big_k, phi) <= 0


class TestDominance:
    def test_mobility_region(self):
        assert dominance("1/4", "1/2", 1) == "mobility"

    def test_infrastructure_region(self):
        assert dominance("1/4", "7/8", 1) == "infrastructure"

    def test_tie_on_boundary(self):
        assert dominance("1/4", "3/4", 1) == "tie"

    @given(alpha=alphas, big_k=ks, phi=phis)
    def test_boundary_consistent_with_dominance(self, alpha, big_k, phi):
        boundary = mobility_boundary(alpha, phi)
        verdict = dominance(alpha, big_k, phi)
        if big_k < boundary:
            assert verdict == "mobility"
        elif big_k > boundary:
            assert verdict == "infrastructure"
        else:
            assert verdict == "tie"


class TestBoundaryLine:
    def test_access_limited_panel(self):
        assert mobility_boundary("1/4", 0) == Fraction(3, 4)
        assert mobility_boundary("1/4", 1) == Fraction(3, 4)  # any phi >= 0

    def test_backbone_limited_panel(self):
        # K = 1 - phi - alpha with phi = -1/4 (Figure 3 right panel)
        assert mobility_boundary("1/2", "-1/4") == Fraction(3, 4)
        assert mobility_boundary("1/4", "-1/4") == Fraction(1)


class TestComputedDiagram:
    def test_grid_shapes(self):
        diagram = compute_phase_diagram(0, grid_points=11)
        assert diagram.exponents.shape == (11, 11)
        assert diagram.regions.shape == (11, 11)

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            compute_phase_diagram(0, grid_points=1)

    def test_monotone_in_k(self):
        """Capacity exponents are non-decreasing in K at fixed alpha."""
        diagram = compute_phase_diagram(0, grid_points=11)
        assert np.all(np.diff(diagram.exponents, axis=0) >= 0)

    def test_monotone_in_alpha(self):
        """Capacity exponents are non-increasing in alpha at fixed K."""
        diagram = compute_phase_diagram(0, grid_points=11)
        assert np.all(np.diff(diagram.exponents, axis=1) <= 0)

    def test_regions_split_along_boundary(self):
        diagram = compute_phase_diagram(0, grid_points=21)
        boundary = diagram.boundary_curve()
        for col, (alpha, k_star) in enumerate(zip(diagram.alphas, boundary)):
            for row, big_k in enumerate(diagram.bs_exponents):
                region = diagram.regions[row, col]
                if big_k < float(k_star) - 1e-12:
                    assert region == "mobility"
                elif big_k > float(k_star) + 1e-12:
                    assert region == "infrastructure"

    def test_ascii_render(self):
        text = compute_phase_diagram(0, grid_points=5).ascii_render()
        assert "M" in text and "I" in text
        assert "alpha" in text
