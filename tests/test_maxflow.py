"""Unit tests for the max-flow cross-validation layer."""

import numpy as np
import pytest

from repro.core.regimes import NetworkParameters
from repro.mobility.shapes import UniformDiskShape
from repro.simulation.maxflow import (
    LinkCapacityGraph,
    session_max_flow,
    uniform_rate_bound,
)
from repro.simulation.network import HybridNetwork
from repro.simulation.traffic import permutation_traffic

SHAPE = UniformDiskShape(1.0)


def build_graph(rng, n=80, f=2.0, k=0, c=0.0, **kwargs):
    homes = rng.random((n, 2))
    bs = rng.random((k, 2)) if k else None
    return LinkCapacityGraph(
        homes, SHAPE, f, bs_positions=bs, wire_capacity=c, c_t=0.5, **kwargs
    ), homes


class TestGraphConstruction:
    def test_node_split(self, rng):
        graph, _ = build_graph(rng, n=20)
        assert graph.ms_count == 20
        assert graph.graph.has_edge((0, "in"), (0, "out"))

    def test_bs_nodes_added(self, rng):
        graph, _ = build_graph(rng, n=20, k=5, c=1.0)
        assert graph.bs_count == 5
        assert graph.graph.has_edge((20, "wired"), (21, "wired"))

    def test_invalid_budget(self, rng):
        homes = rng.random((5, 2))
        with pytest.raises(ValueError):
            LinkCapacityGraph(homes, SHAPE, 2.0, node_budget=0.0)


class TestMaxFlow:
    def test_positive_for_connected_pair(self, rng):
        graph, _ = build_graph(rng, n=80, f=1.5)
        assert graph.max_flow(0, 40) > 0

    def test_bounded_by_node_budget(self, rng):
        graph, _ = build_graph(rng, n=80, f=1.5)
        # the source's own node-split arc caps any session at the budget
        assert graph.max_flow(0, 40) <= 0.5 + 1e-12

    def test_zero_when_disconnected(self, rng):
        # huge f: mobility disks shrink to nothing, no MS-MS contacts
        graph, _ = build_graph(rng, n=40, f=500.0, capacity_floor=1e-12)
        assert graph.max_flow(0, 20) == 0.0

    def test_invalid_endpoints(self, rng):
        graph, _ = build_graph(rng, n=10)
        with pytest.raises(ValueError):
            graph.max_flow(0, 0)
        with pytest.raises(ValueError):
            graph.max_flow(0, 99)

    def test_wires_open_long_range_paths(self, rng):
        """With BSs + wires, even contact-starved MS pairs get flow."""
        n = 60
        homes = np.vstack([
            0.10 + 0.02 * rng.random((n // 2, 2)),
            0.80 + 0.02 * rng.random((n // 2, 2)),
        ])
        bs = np.array([[0.11, 0.11], [0.81, 0.81]])
        f = 20.0  # tiny mobility: the two blobs never meet wirelessly
        without = LinkCapacityGraph(homes, SHAPE, f, c_t=0.5)
        with_wires = LinkCapacityGraph(
            homes, SHAPE, f, bs_positions=bs, wire_capacity=1.0, c_t=0.5
        )
        assert without.max_flow(0, n - 1) == 0.0
        assert with_wires.max_flow(0, n - 1) > 0.0


class TestUniformRateBound:
    def test_sample_validation(self, rng):
        graph, _ = build_graph(rng, n=20)
        traffic = permutation_traffic(rng, 20)
        with pytest.raises(ValueError):
            uniform_rate_bound(graph, traffic, sample=0)

    def test_session_flows_shape(self, rng):
        graph, _ = build_graph(rng, n=30, f=1.5)
        flows = session_max_flow(graph, [(0, 1), (2, 3)])
        assert set(flows) == {(0, 1), (2, 3)}

    def test_bound_dominates_scheme_a(self):
        """The per-session max-flow bound must sit above the scheme-A
        achieved uniform rate on the same realisation."""
        params = NetworkParameters(alpha="1/8", cluster_exponent=1)
        rng = np.random.default_rng(4)
        net = HybridNetwork.build(params, 150, rng)
        traffic = net.sample_traffic()
        achieved = net.scheme_a().sustainable_rate(traffic).per_node_rate
        graph = LinkCapacityGraph(
            net.home_model.points, net.shape, net.realized.f, c_t=net.c_t
        )
        bound = uniform_rate_bound(graph, traffic, sample=6, rng=rng)
        assert 0 < achieved <= bound

    def test_bound_dominates_scheme_b(self):
        """Same for scheme B with infrastructure included."""
        params = NetworkParameters(
            alpha="1/8", cluster_exponent=1, bs_exponent="7/8",
            backbone_exponent=1,
        )
        rng = np.random.default_rng(5)
        net = HybridNetwork.build(params, 150, rng)
        traffic = net.sample_traffic()
        achieved = net.scheme_b().sustainable_rate(traffic).per_node_rate
        graph = LinkCapacityGraph(
            net.home_model.points, net.shape, net.realized.f,
            bs_positions=net.bs_positions, wire_capacity=net.realized.c,
            c_t=net.c_t,
        )
        bound = uniform_rate_bound(graph, traffic, sample=6, rng=rng)
        assert 0 <= achieved <= bound
