"""Unit tests for SchemeB's memory-light access-vector path."""

import numpy as np
import pytest

from repro.infrastructure.backbone import Backbone
from repro.mobility.shapes import UniformDiskShape
from repro.routing.scheme_b import SchemeB
from repro.simulation.traffic import permutation_traffic

SHAPE = UniformDiskShape(1.0)


def make_inputs(rng, n=80, k=16, zones=2, f=3.0, r_t=0.05):
    homes = rng.random((n, 2))
    bs = rng.random((k, 2))
    ms_zone, bs_zone, _ = SchemeB.squarelet_zones(homes, bs, zones)
    return homes, bs, ms_zone, bs_zone, f, r_t


class TestZoneAccessVector:
    def test_matches_matrix_path(self, rng):
        homes, bs, ms_zone, bs_zone, f, r_t = make_inputs(rng)
        matrix = SchemeB.access_matrix(homes, bs, SHAPE, f, r_t)
        masked = np.where(ms_zone[:, None] == bs_zone[None, :], matrix, 0.0)
        expected = masked.sum(axis=1)
        vector = SchemeB.zone_access_vector(
            homes, bs, ms_zone, bs_zone, SHAPE, f, r_t
        )
        assert np.allclose(vector, expected)

    def test_chunking_invariant(self, rng):
        homes, bs, ms_zone, bs_zone, f, r_t = make_inputs(rng, n=100)
        whole = SchemeB.zone_access_vector(
            homes, bs, ms_zone, bs_zone, SHAPE, f, r_t, chunk_size=100
        )
        chunked = SchemeB.zone_access_vector(
            homes, bs, ms_zone, bs_zone, SHAPE, f, r_t, chunk_size=7
        )
        assert np.allclose(whole, chunked)


class TestFromAccessVector:
    def test_equivalent_to_matrix_constructor(self, rng):
        homes, bs, ms_zone, bs_zone, f, r_t = make_inputs(rng)
        matrix = SchemeB.access_matrix(homes, bs, SHAPE, f, r_t)
        backbone_a = Backbone(16, 1.0)
        backbone_b = Backbone(16, 1.0)
        via_matrix = SchemeB(ms_zone, bs_zone, matrix, backbone_a)
        vector = SchemeB.zone_access_vector(
            homes, bs, ms_zone, bs_zone, SHAPE, f, r_t
        )
        via_vector = SchemeB.from_access_vector(ms_zone, bs_zone, vector, backbone_b)
        traffic = permutation_traffic(rng, 80)
        rate_matrix = via_matrix.sustainable_rate(traffic)
        rate_vector = via_vector.sustainable_rate(traffic)
        assert rate_matrix.per_node_rate == pytest.approx(rate_vector.per_node_rate)
        assert np.allclose(
            via_matrix.ms_access_capacity(), via_vector.ms_access_capacity()
        )

    def test_length_validation(self, rng):
        with pytest.raises(ValueError):
            SchemeB.from_access_vector(
                np.zeros(5, int), np.zeros(3, int), np.ones(4), Backbone(3, 1.0)
            )
        with pytest.raises(ValueError):
            SchemeB.from_access_vector(
                np.zeros(5, int), np.zeros(3, int), np.ones(5), Backbone(4, 1.0)
            )

    def test_generic_rate_in_details(self, rng):
        homes, bs, ms_zone, bs_zone, f, r_t = make_inputs(rng, f=2.0, r_t=0.08)
        vector = SchemeB.zone_access_vector(
            homes, bs, ms_zone, bs_zone, SHAPE, f, r_t
        )
        scheme = SchemeB.from_access_vector(ms_zone, bs_zone, vector, Backbone(16, 1.0))
        result = scheme.sustainable_rate(permutation_traffic(rng, 80))
        assert "generic_rate" in result.details
        assert result.details["generic_rate"] >= result.per_node_rate or \
            result.details["generic_rate"] >= 0
        assert result.details["median_access_rate"] >= result.details["access_rate"]
