"""Round-trip tests for the store's tagged JSON serialization."""

import json
from fractions import Fraction

import numpy as np
import pytest

from repro.core.regimes import NetworkParameters
from repro.routing.base import FlowResult
from repro.store import canonical_json, content_digest, from_jsonable, to_jsonable


def roundtrip(obj):
    # through real JSON text, exactly like the journal does
    return from_jsonable(json.loads(json.dumps(to_jsonable(obj), allow_nan=False)))


class TestPrimitives:
    def test_scalars(self):
        for value in (None, True, False, 0, -3, "text", 0.25):
            assert roundtrip(value) == value

    def test_non_finite_floats_tagged(self):
        assert np.isnan(roundtrip(float("nan")))
        assert roundtrip(float("inf")) == float("inf")
        assert roundtrip(float("-inf")) == float("-inf")

    def test_float_bit_exact(self):
        value = 0.1 + 0.2  # not representable prettily; repr round-trips
        assert roundtrip(value) == value

    def test_tuple_vs_list_distinguished(self):
        assert roundtrip((1, 2)) == (1, 2)
        assert roundtrip([1, 2]) == [1, 2]
        assert isinstance(roundtrip((1, 2)), tuple)

    def test_non_string_dict_keys(self):
        data = {(0, 1): 2.5, (3, 4): 0.0}
        assert roundtrip(data) == data

    def test_fraction(self):
        assert roundtrip(Fraction(-7, 8)) == Fraction(-7, 8)

    def test_numpy_scalars_become_python(self):
        assert roundtrip(np.int64(4)) == 4
        assert roundtrip(np.float64(0.5)) == 0.5

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestNdarray:
    def test_float_array_bit_exact(self):
        array = np.random.default_rng(0).random((3, 4))
        back = roundtrip(array)
        assert back.dtype == array.dtype
        assert np.array_equal(back, array)

    def test_int_array_and_shape(self):
        array = np.arange(6, dtype=np.int32).reshape(2, 3)
        back = roundtrip(array)
        assert back.dtype == np.int32 and back.shape == (2, 3)
        assert np.array_equal(back, array)

    def test_array_with_nan(self):
        array = np.array([1.0, float("nan"), float("inf")])
        back = roundtrip(array)
        assert np.isnan(back[1]) and back[2] == float("inf")


class TestNetworkParameters:
    def test_roundtrip_with_infrastructure(self):
        params = NetworkParameters(
            alpha="1/4", cluster_exponent=1, bs_exponent="7/8", backbone_exponent=1
        )
        assert roundtrip(params) == params

    def test_roundtrip_without_infrastructure(self):
        params = NetworkParameters(alpha="1/2", cluster_exponent="1/2",
                                   cluster_radius_exponent="1/2")
        back = roundtrip(params)
        assert back == params and back.bs_exponent is None

    def test_roundtrip_validate_false_family(self):
        # the Table-I trivial row violates alpha <= 1/2 on purpose; decoding
        # must not re-validate
        params = NetworkParameters(
            alpha="3/4", cluster_exponent="1/4", cluster_radius_exponent="1/4",
            bs_exponent="3/4", backbone_exponent=1, validate=False,
        )
        assert roundtrip(params) == params


class TestFlowResult:
    def test_roundtrip_with_details(self):
        result = FlowResult(
            per_node_rate=1.5e-3,
            bottleneck="access",
            details={
                "generic_rate": 2.5e-3,
                "loads": np.array([1.0, 2.0]),
                "exact": Fraction(1, 3),
                "nested": {"worst": (4, 5)},
            },
        )
        back = roundtrip(result)
        assert isinstance(back, FlowResult)
        assert back.per_node_rate == result.per_node_rate
        assert back.bottleneck == "access"
        assert np.array_equal(back.details["loads"], result.details["loads"])
        assert back.details["exact"] == Fraction(1, 3)
        assert back.details["nested"]["worst"] == (4, 5)


class TestRegisteredDataclasses:
    def test_figure1_panel_roundtrip(self, rng):
        from repro.experiments.figure1 import UNIFORM_PARAMS, make_panel

        panel = make_panel(UNIFORM_PARAMS, 100, rng, "uniform", grid_side=8)
        back = roundtrip(panel)
        assert back.label == panel.label
        assert back.parameters == panel.parameters
        assert np.array_equal(back.positions, panel.positions)
        assert np.array_equal(back.field.values, panel.field.values)

    def test_spot_check_roundtrip(self):
        from repro.experiments.figure3 import SpotCheck

        check = SpotCheck(
            alpha=Fraction(1, 4), bs_exponent=Fraction(1, 4), phi=Fraction(0),
            predicted_region="mobility", scheme_a_rate=0.5, scheme_b_rate=0.25,
        )
        back = roundtrip(check)
        assert back == check and back.measured_region == "mobility"

    def test_unregistered_dataclass_rejected(self):
        from repro.experiments.scaling import SweepResult  # not a payload

        sweep = SweepResult(
            parameters=NetworkParameters(alpha="1/4", cluster_exponent=1),
            scheme="A", n_values=np.array([100]), rates=np.array([0.5]),
            trials=1, theory_exponent=-0.25, fit=None,
        )
        with pytest.raises(TypeError):
            to_jsonable(sweep)


class TestCanonicalJson:
    def test_deterministic_and_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_structural_equality_same_digest(self):
        p1 = NetworkParameters(alpha="1/4", cluster_exponent=1)
        p2 = NetworkParameters(alpha=Fraction(1, 4), cluster_exponent=1)
        assert content_digest(p1) == content_digest(p2)

    def test_different_content_different_digest(self):
        p1 = NetworkParameters(alpha="1/4", cluster_exponent=1)
        p2 = NetworkParameters(alpha="1/8", cluster_exponent=1)
        assert content_digest(p1) != content_digest(p2)
