"""Batched scheduling: guard-zone kernel, scheduler batch path, lockstep."""

import numpy as np
import pytest

from repro.mobility.processes import IIDAroundHome
from repro.mobility.shapes import UniformDiskShape
from repro.observability.events import SlotBatch, using_telemetry
from repro.observability import RecordingTelemetry
from repro.simulation.batch import run_lockstep
from repro.simulation.engine import PacketRouter, SlottedSimulator
from repro.simulation.traffic import permutation_traffic
from repro.wireless.protocol_model import ProtocolModel
from repro.wireless.scheduler import (
    GreedyMatchingScheduler,
    PolicySStar,
    TDMACellScheduler,
    VariableRangeScheduler,
)


class FIFORouter(PacketRouter):
    def select_transfer(self, queue, holder, peer):
        return queue[0] if queue else None


def make_sim(seed, n=40, arrival=0.15, scheduler=None, static=None):
    rng = np.random.default_rng(seed)
    homes = rng.random((n, 2))
    process = IIDAroundHome(homes, UniformDiskShape(1.0), 0.3, rng)
    total = n + (0 if static is None else len(static))
    scheduler = scheduler or PolicySStar(node_count=total, c_t=0.4, delta=0.5)
    traffic = permutation_traffic(rng, n)
    return SlottedSimulator(
        process=process,
        scheduler=scheduler,
        router=FIFORouter(),
        traffic=traffic,
        arrival_prob=arrival,
        rng=rng,
        static_positions=static,
    )


class TestStrictPairsBatch:
    @pytest.mark.parametrize("radius", [0.03, 0.1, 0.4])
    def test_matches_per_slice(self, rng, radius):
        model = ProtocolModel(delta=0.5)
        positions = rng.random((5, 50, 2))
        batched = model.strict_pairs_batch(positions, radius)
        for b in range(5):
            assert batched[b] == model.strict_pairs(positions[b], radius)

    def test_nonpositive_range_empty(self, rng):
        model = ProtocolModel(delta=0.5)
        assert model.strict_pairs_batch(rng.random((3, 10, 2)), 0.0) == [[], [], []]


class TestSchedulerBatch:
    def scheduler_cases(self, n):
        return [
            PolicySStar(node_count=n, c_t=0.4, delta=0.5),
            VariableRangeScheduler(transmission_range=0.12, delta=0.5),
            GreedyMatchingScheduler(transmission_range=0.15, delta=0.5),
        ]

    def test_batch_matches_per_slice(self, rng):
        positions = rng.random((4, 45, 2))
        for scheduler in self.scheduler_cases(45):
            batched = scheduler.schedule_batch(positions)
            for b in range(4):
                serial = scheduler.schedule(positions[b])
                assert batched[b].pairs == serial.pairs
                assert batched[b].transmission_range == serial.transmission_range

    def test_reference_mode_falls_back_and_matches(self, rng):
        positions = rng.random((3, 20, 2))
        fast = PolicySStar(node_count=20, c_t=0.4, delta=0.5)
        reference = PolicySStar(node_count=20, c_t=0.4, delta=0.5, reference=True)
        fast_batch = fast.schedule_batch(positions)
        ref_batch = reference.schedule_batch(positions)
        for b in range(3):
            assert fast_batch[b].pairs == ref_batch[b].pairs

    def test_batch_signatures(self):
        sstar = PolicySStar(node_count=30)
        assert sstar.batch_signature() is not None
        assert sstar.batch_signature() == PolicySStar(node_count=30).batch_signature()
        assert (
            PolicySStar(node_count=30).batch_signature()
            != PolicySStar(node_count=31).batch_signature()
        )
        assert VariableRangeScheduler(0.1).batch_signature() is not None
        assert GreedyMatchingScheduler(0.1).batch_signature() is not None

    def test_stateful_tdma_is_unshareable(self, rng):
        cells = TDMACellScheduler(
            cell_of_ms=np.zeros(10, dtype=int),
            bs_colors=np.zeros(1, dtype=int),
            ms_count=10,
            cell_range=0.2,
        )
        assert cells.batch_signature() is None


class TestRunLockstep:
    def test_bit_identical_to_serial_runs(self):
        lock = [make_sim(seed) for seed in (1, 2, 3)]
        serial = [make_sim(seed) for seed in (1, 2, 3)]
        lock_metrics = run_lockstep(lock, 30)
        serial_metrics = [sim.run(30) for sim in serial]
        for got, want in zip(lock_metrics, serial_metrics):
            assert got.created == want.created
            assert got.delivered == want.delivered
            assert got.in_flight == want.in_flight
            assert np.array_equal(got.delays, want.delays)

    def test_emits_batch_width(self):
        sims = [make_sim(seed) for seed in (5, 6, 7, 8)]
        sink = RecordingTelemetry()
        with using_telemetry(sink):
            run_lockstep(sims, 10)
        batches = sink.of_type(SlotBatch)
        assert batches and batches[-1].batch_width == 4

    def test_single_sim_falls_back_to_run(self):
        sims = [make_sim(9)]
        metrics = run_lockstep(sims, 12)
        reference = make_sim(9).run(12)
        assert metrics[0].created == reference.created
        assert metrics[0].delivered == reference.delivered

    def test_mixed_signatures_rejected(self):
        sims = [
            make_sim(1),
            make_sim(2, scheduler=VariableRangeScheduler(0.1, delta=0.5)),
        ]
        with pytest.raises(ValueError, match="signature"):
            run_lockstep(sims, 5)

    def test_mismatched_node_counts_rejected(self):
        sims = [make_sim(1, n=40), make_sim(2, n=50)]
        with pytest.raises(ValueError):
            run_lockstep(sims, 5)

    def test_empty_and_invalid_slots(self):
        assert run_lockstep([], 10) == []
        with pytest.raises(ValueError):
            run_lockstep([make_sim(1), make_sim(2)], 0)

    def test_lockstep_with_static_stations(self):
        static = np.random.default_rng(99).random((6, 2))
        lock = [make_sim(seed, static=static) for seed in (11, 12)]
        serial = [make_sim(seed, static=static) for seed in (11, 12)]
        lock_metrics = run_lockstep(lock, 20)
        serial_metrics = [sim.run(20) for sim in serial]
        for got, want in zip(lock_metrics, serial_metrics):
            assert got.created == want.created
            assert got.delivered == want.delivered
