"""Unit tests for the protocol interference model (Definition 4)."""

import numpy as np
import pytest

from repro.wireless.protocol_model import ProtocolModel


def square_positions():
    """Four nodes on a small square plus one far away."""
    return np.array(
        [
            [0.10, 0.10],
            [0.12, 0.10],  # close to node 0
            [0.50, 0.50],
            [0.52, 0.50],  # close to node 2
            [0.90, 0.90],
        ]
    )


class TestConstruction:
    def test_guard_factor(self):
        assert ProtocolModel(delta=1.0).guard_factor == 2.0

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            ProtocolModel(delta=0.0)


class TestScheduleFeasibility:
    def test_empty_schedule_feasible(self):
        model = ProtocolModel()
        assert model.is_feasible_schedule(square_positions(), [], 0.05)

    def test_two_distant_links_feasible(self):
        model = ProtocolModel(delta=1.0)
        assert model.is_feasible_schedule(
            square_positions(), [(0, 1), (2, 3)], 0.05
        )

    def test_out_of_range_link_rejected(self):
        model = ProtocolModel()
        violations = model.violations(square_positions(), [(0, 4)], 0.05)
        assert any("exceeds range" in v for v in violations)

    def test_interfering_transmitters_rejected(self):
        positions = np.array(
            [[0.10, 0.10], [0.14, 0.10], [0.16, 0.10], [0.20, 0.10]]
        )
        model = ProtocolModel(delta=1.0)
        # transmitter 2 sits 0.02 from receiver 1 < guard 2*0.05
        violations = model.violations(positions, [(0, 1), (2, 3)], 0.05)
        assert any("guard zone" in v for v in violations)

    def test_node_reuse_rejected(self):
        model = ProtocolModel()
        violations = model.violations(square_positions(), [(0, 1), (1, 2)], 0.5)
        assert any("two links" in v for v in violations)

    def test_self_loop_rejected(self):
        model = ProtocolModel()
        violations = model.violations(square_positions(), [(0, 0)], 0.5)
        assert any("self-loop" in v for v in violations)


class TestStrictPairs:
    def test_isolated_close_pair_enabled(self):
        positions = np.array([[0.1, 0.1], [0.13, 0.1], [0.8, 0.8]])
        model = ProtocolModel(delta=1.0)
        assert model.strict_pairs(positions, 0.05) == [(0, 1)]

    def test_third_node_in_guard_blocks(self):
        positions = np.array([[0.1, 0.1], [0.13, 0.1], [0.16, 0.1]])
        model = ProtocolModel(delta=1.0)
        # node 2 is within guard (0.1) of node 1 -> no pair enabled
        assert model.strict_pairs(positions, 0.05) == []

    def test_pairs_are_node_disjoint(self, rng):
        positions = rng.random((60, 2))
        model = ProtocolModel(delta=1.0)
        pairs = model.strict_pairs(positions, 0.04)
        nodes = [node for pair in pairs for node in pair]
        assert len(nodes) == len(set(nodes))

    def test_strict_pairs_always_feasible(self, rng):
        """S*-enabled pairs must satisfy the (looser) protocol model."""
        model = ProtocolModel(delta=1.0)
        for _ in range(5):
            positions = rng.random((50, 2))
            pairs = model.strict_pairs(positions, 0.05)
            assert model.is_feasible_schedule(positions, pairs, 0.05)

    def test_accepts_precomputed_distances(self, rng):
        from repro.geometry.torus import pairwise_distances

        positions = rng.random((30, 2))
        model = ProtocolModel()
        distances = pairwise_distances(positions)
        assert model.strict_pairs(positions, 0.05, distances=distances) == \
            model.strict_pairs(positions, 0.05)


class TestCrossClusterInterference:
    def test_far_clusters_do_not_interfere(self, rng):
        centers = np.array([[0.2, 0.2], [0.8, 0.8]])
        cluster_of = np.repeat([0, 1], 20)
        positions = np.vstack(
            [
                centers[0] + 0.02 * (rng.random((20, 2)) - 0.5),
                centers[1] + 0.02 * (rng.random((20, 2)) - 0.5),
            ]
        )
        model = ProtocolModel(delta=1.0)
        assert model.cross_cluster_interference_count(positions, cluster_of, 0.01) == 0

    def test_overlapping_clusters_interfere(self, rng):
        positions = 0.5 + 0.01 * (rng.random((20, 2)) - 0.5)
        cluster_of = np.repeat([0, 1], 10)
        model = ProtocolModel(delta=1.0)
        assert model.cross_cluster_interference_count(positions, cluster_of, 0.05) > 0
