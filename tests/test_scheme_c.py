"""Unit tests for routing & scheduling scheme C (Definition 13 / Theorem 9)."""

import numpy as np
import pytest

from repro.infrastructure.backbone import Backbone
from repro.infrastructure.placement import hexagonal_cluster_placement
from repro.mobility.clustered import place_home_points
from repro.routing.scheme_c import SchemeC
from repro.simulation.traffic import permutation_traffic


def build_scheme(rng, n=120, m=4, k_per_cluster=4, radius=0.06, c=1.0):
    model = place_home_points(rng, n=n, m=m, radius=radius)
    bs = hexagonal_cluster_placement(model.centers, radius, k_per_cluster)
    bs_cluster = np.repeat(np.arange(m), k_per_cluster)
    backbone = Backbone(m * k_per_cluster, c)
    scheme = SchemeC(
        ms_positions=model.points,
        bs_positions=bs,
        ms_cluster=model.assignment,
        bs_cluster=bs_cluster,
        backbone=backbone,
        delta=1.0,
    )
    return scheme, model


class TestCellConstruction:
    def test_every_ms_attached(self, rng):
        scheme, _ = build_scheme(rng)
        assert np.all(scheme.cell_of_ms >= 0)

    def test_attachment_is_same_cluster(self, rng):
        scheme, model = build_scheme(rng, m=3, k_per_cluster=5)
        bs_cluster = np.repeat(np.arange(3), 5)
        assert np.all(bs_cluster[scheme.cell_of_ms] == model.assignment)

    def test_cell_range_positive_and_bounded(self, rng):
        radius = 0.05
        scheme, _ = build_scheme(rng, radius=radius)
        assert 0 < scheme.cell_range <= 2.5 * radius

    def test_population_partition(self, rng):
        scheme, _ = build_scheme(rng, n=200)
        assert scheme.cell_population().sum() == 200

    def test_orphan_when_cluster_has_no_bs(self, rng):
        model = place_home_points(rng, n=20, m=2, radius=0.05)
        bs = hexagonal_cluster_placement(model.centers[:1], 0.05, 3)
        scheme = SchemeC(
            ms_positions=model.points,
            bs_positions=bs,
            ms_cluster=model.assignment,
            bs_cluster=np.zeros(3, dtype=int),
            backbone=Backbone(3, 1.0),
        )
        orphans = np.sum(scheme.cell_of_ms < 0)
        assert orphans == np.sum(model.assignment == 1)


class TestTDMAGrouping:
    def test_group_count_constant_in_k(self, rng):
        """The colour count must stay Theta(1) as cells multiply (bounded
        degree of the cell-interference graph, Theorem 9)."""
        small, _ = build_scheme(rng, m=2, k_per_cluster=3)
        large, _ = build_scheme(rng, m=8, k_per_cluster=8, radius=0.04)
        assert large.group_count <= max(4 * small.group_count, 40)

    def test_groups_cover_all_cells(self, rng):
        scheme, _ = build_scheme(rng)
        assert scheme.group_count >= 1


class TestSustainableRate:
    def test_positive(self, rng):
        scheme, _ = build_scheme(rng)
        traffic = permutation_traffic(rng, 120)
        result = scheme.sustainable_rate(traffic)
        assert result.per_node_rate > 0
        assert result.bottleneck in ("access", "backbone")

    def test_orphans_give_zero(self, rng):
        model = place_home_points(rng, n=20, m=2, radius=0.05)
        bs = hexagonal_cluster_placement(model.centers[:1], 0.05, 3)
        scheme = SchemeC(
            ms_positions=model.points,
            bs_positions=bs,
            ms_cluster=model.assignment,
            bs_cluster=np.zeros(3, dtype=int),
            backbone=Backbone(3, 1.0),
        )
        traffic = permutation_traffic(rng, 20)
        result = scheme.sustainable_rate(traffic)
        assert result.per_node_rate == 0.0
        assert result.bottleneck == "orphan-ms"

    def test_access_rate_formula(self, rng):
        scheme, _ = build_scheme(rng, c=100.0)
        traffic = permutation_traffic(rng, 120)
        result = scheme.sustainable_rate(traffic)
        expected = 1.0 / (
            2.0 * scheme.group_count * scheme.cell_population().max()
        )
        assert result.details["access_rate"] == pytest.approx(expected)

    def test_more_bs_increases_access_rate(self):
        """Theorem 9: access rate scales like k/n -- more cells, fewer MSs
        per cell, higher rate (with ample backbone).  Needs well-separated
        clusters and enough MSs so the TDMA group count stays constant
        while the per-cell population drops."""
        from repro.geometry.torus import disk_sample

        centers = np.array([[0.25, 0.25], [0.25, 0.75], [0.75, 0.25], [0.75, 0.75]])
        n, m, radius = 600, 4, 0.04
        rng = np.random.default_rng(1)
        assignment = rng.integers(0, m, size=n)
        positions = disk_sample(rng, centers[assignment], radius)
        traffic = permutation_traffic(np.random.default_rng(2), n)

        def rate(k_per_cluster):
            bs = hexagonal_cluster_placement(centers, radius, k_per_cluster)
            scheme = SchemeC(
                ms_positions=positions,
                bs_positions=bs,
                ms_cluster=assignment,
                bs_cluster=np.repeat(np.arange(m), k_per_cluster),
                backbone=Backbone(m * k_per_cluster, 1000.0),
            )
            return scheme.sustainable_rate(traffic).per_node_rate

        assert rate(24) > rate(3)

    def test_starved_backbone_binds(self, rng):
        scheme, _ = build_scheme(rng, c=1e-7)
        traffic = permutation_traffic(rng, 120)
        assert scheme.sustainable_rate(traffic).bottleneck == "backbone"

    def test_session_count_mismatch(self, rng):
        scheme, _ = build_scheme(rng)
        with pytest.raises(ValueError):
            scheme.sustainable_rate(permutation_traffic(rng, 5))

    def test_invalid_delta(self, rng):
        model = place_home_points(rng, n=10, m=1, radius=0.05)
        bs = hexagonal_cluster_placement(model.centers, 0.05, 2)
        with pytest.raises(ValueError):
            SchemeC(
                ms_positions=model.points,
                bs_positions=bs,
                ms_cluster=model.assignment,
                bs_cluster=np.zeros(2, dtype=int),
                backbone=Backbone(2, 1.0),
                delta=0.0,
            )
