"""Unit tests for the HybridNetwork assembly."""

import numpy as np
import pytest

from repro.core.regimes import MobilityRegime, NetworkParameters
from repro.routing.scheme_a import SchemeA
from repro.routing.scheme_b import SchemeB
from repro.routing.scheme_c import SchemeC
from repro.routing.static_multihop import StaticMultihop
from repro.simulation.network import HybridNetwork

STRONG_NO_BS = NetworkParameters(alpha="1/4", cluster_exponent=1)
STRONG_BS = NetworkParameters(
    alpha="1/4", cluster_exponent=1, bs_exponent="7/8", backbone_exponent=1
)
WEAK_BS = NetworkParameters(
    alpha="1/2",
    cluster_exponent="1/2",
    cluster_radius_exponent="1/2",
    bs_exponent="3/4",
    backbone_exponent=1,
)
TRIVIAL_BS = NetworkParameters(
    alpha="3/4",
    cluster_exponent="1/2",
    cluster_radius_exponent="3/8",
    bs_exponent="3/4",
    backbone_exponent=1,
    validate=False,
)


class TestBuild:
    def test_counts(self, rng):
        net = HybridNetwork.build(STRONG_BS, 200, rng)
        assert net.n == 200
        assert net.k == round(200 ** (7 / 8))
        assert net.total_nodes == net.n + net.k

    def test_no_infrastructure(self, rng):
        net = HybridNetwork.build(STRONG_NO_BS, 100, rng)
        assert net.k == 0
        assert net.bs_positions is None
        assert net.backbone is None

    def test_invalid_placement(self, rng):
        with pytest.raises(ValueError):
            HybridNetwork.build(STRONG_BS, 100, rng, placement="bogus")

    def test_invalid_mobility(self, rng):
        with pytest.raises(ValueError):
            HybridNetwork.build(STRONG_BS, 100, rng, mobility="bogus")

    @pytest.mark.parametrize("placement", ["matched", "uniform", "regular"])
    def test_placements(self, rng, placement):
        net = HybridNetwork.build(STRONG_BS, 150, rng, placement=placement)
        assert net.bs_positions.shape[0] == net.k

    @pytest.mark.parametrize("mobility", ["iid", "metropolis", "waypoint", "static"])
    def test_mobility_kinds(self, rng, mobility):
        net = HybridNetwork.build(STRONG_NO_BS, 80, rng, mobility=mobility)
        assert net.process.positions().shape == (80, 2)

    def test_trivial_regime_uses_cluster_lattice(self, rng):
        net = HybridNetwork.build(TRIVIAL_BS, 300, rng)
        # BS count is per-cluster multiples
        assert net.k % net.home_model.cluster_count == 0


class TestSchemeFactories:
    def test_scheme_a(self, rng):
        net = HybridNetwork.build(STRONG_NO_BS, 120, rng)
        assert isinstance(net.scheme_a(), SchemeA)

    def test_scheme_b_requires_bs(self, rng):
        net = HybridNetwork.build(STRONG_NO_BS, 120, rng)
        with pytest.raises(ValueError):
            net.scheme_b()

    def test_scheme_b_strong(self, rng):
        net = HybridNetwork.build(STRONG_BS, 200, rng)
        assert isinstance(net.scheme_b(), SchemeB)

    def test_scheme_b_weak_uses_clusters(self, rng):
        net = HybridNetwork.build(WEAK_BS, 300, rng)
        scheme = net.scheme_b()
        route = scheme.session_route(0, 1)
        assert route["source_zone"] < net.home_model.cluster_count

    def test_scheme_c(self, rng):
        net = HybridNetwork.build(TRIVIAL_BS, 300, rng)
        assert isinstance(net.scheme_c(), SchemeC)

    def test_static_baseline(self, rng):
        net = HybridNetwork.build(WEAK_BS, 200, rng)
        assert isinstance(net.static_baseline(), StaticMultihop)

    def test_access_range_by_regime(self, rng):
        strong = HybridNetwork.build(STRONG_BS, 200, rng)
        weak = HybridNetwork.build(WEAK_BS, 200, rng)
        assert strong.access_transmission_range() == pytest.approx(
            strong.c_t / np.sqrt(strong.total_nodes)
        )
        expected = weak.realized.r * np.sqrt(weak.realized.m / weak.n)
        assert weak.access_transmission_range() == pytest.approx(expected)


class TestSustainableRate:
    def test_strong_no_bs_uses_scheme_a(self, rng):
        net = HybridNetwork.build(STRONG_NO_BS, 250, rng)
        result = net.sustainable_rate()
        assert result.per_node_rate > 0

    def test_strong_with_bs_sums_a_and_b(self, rng):
        net = HybridNetwork.build(STRONG_BS, 250, rng)
        result = net.sustainable_rate()
        assert result.per_node_rate == pytest.approx(
            result.details["scheme_a_rate"] + result.details["scheme_b_rate"]
        )

    def test_weak_uses_scheme_b(self, rng):
        net = HybridNetwork.build(WEAK_BS, 400, rng)
        result = net.sustainable_rate()
        assert result.bottleneck in ("access", "backbone", "zone-without-bs")

    def test_trivial_uses_scheme_c(self, rng):
        net = HybridNetwork.build(TRIVIAL_BS, 400, rng)
        result = net.sustainable_rate()
        assert result.bottleneck in ("access", "backbone", "orphan-ms")

    def test_theoretical_passthrough(self, rng):
        net = HybridNetwork.build(STRONG_BS, 100, rng)
        assert net.theoretical().regime is MobilityRegime.STRONG

    def test_traffic_sampling(self, rng):
        net = HybridNetwork.build(STRONG_NO_BS, 60, rng)
        traffic = net.sample_traffic()
        assert traffic.session_count == 60

    def test_scheduler_sized_for_all_nodes(self, rng):
        net = HybridNetwork.build(STRONG_BS, 150, rng)
        scheduler = net.scheduler()
        assert scheduler.transmission_range() == pytest.approx(
            net.c_t / np.sqrt(net.total_nodes)
        )
