"""Unit tests for local density and the uniformly dense criterion (Thm 1)."""

import math

import numpy as np
import pytest

from repro.core.density import density_field, local_density
from repro.mobility.clustered import place_home_points
from repro.mobility.shapes import UniformDiskShape

SHAPE = UniformDiskShape(1.0)


class TestLocalDensity:
    def test_shape(self, rng):
        homes = rng.random((100, 2))
        probes = rng.random((7, 2))
        rho = local_density(probes, homes, SHAPE, f=2.0, n=100)
        assert rho.shape == (7,)
        assert np.all(rho >= 0)

    def test_invalid_n(self, rng):
        with pytest.raises(ValueError):
            local_density(rng.random((3, 2)), rng.random((5, 2)), SHAPE, 1.0, 0)

    def test_total_mass(self, rng):
        """Averaged over the torus, rho ~ n * pi/n = pi (disk area times
        uniform unit density)."""
        n = 500
        homes = rng.random((n, 2))
        probes = rng.random((400, 2))
        rho = local_density(probes, homes, SHAPE, f=2.0, n=n)
        assert float(rho.mean()) == pytest.approx(math.pi, rel=0.15)

    def test_bs_indicator_contribution(self, rng):
        homes = rng.random((100, 2))
        probe = np.array([[0.5, 0.5]])
        bs_near = np.array([[0.5, 0.5 + 0.5 / math.sqrt(100)]])
        with_bs = local_density(probe, homes, SHAPE, 2.0, 100, bs_positions=bs_near)
        without = local_density(probe, homes, SHAPE, 2.0, 100)
        assert with_bs[0] == pytest.approx(without[0] + 1.0)

    def test_monte_carlo_agreement(self, rng):
        """Closed-form rho vs empirical expected disk occupancy."""
        n, f = 300, 3.0
        homes = rng.random((n, 2))
        probe = np.array([0.4, 0.6])
        radius = 1.0 / math.sqrt(n)
        trials = 300
        counts = []
        from repro.geometry.torus import torus_distance, wrap

        for _ in range(trials):
            offsets = SHAPE.sample_offsets(rng, n, 1.0 / f)
            positions = wrap(homes + offsets)
            counts.append(np.sum(torus_distance(positions, probe) <= radius))
        empirical = float(np.mean(counts))
        predicted = local_density(probe[None, :], homes, SHAPE, f, n)[0]
        assert empirical == pytest.approx(predicted, rel=0.25)


class TestDensityField:
    def test_grid_shape(self, rng):
        homes = rng.random((200, 2))
        field = density_field(homes, SHAPE, 2.0, 200, grid_side=16)
        assert field.values.shape == (16, 16)

    def test_invalid_grid(self, rng):
        with pytest.raises(ValueError):
            density_field(rng.random((10, 2)), SHAPE, 1.0, 10, grid_side=1)

    def test_uniform_network_is_uniformly_dense(self, rng):
        """Theorem 1 forward direction: strong mobility (uniform homes,
        moderate f) gives a bounded density ratio."""
        n = 1000
        model = place_home_points(rng, n=n, m=n, radius=0.0)
        field = density_field(model.points, SHAPE, f=2.0, n=n, grid_side=16)
        assert field.min > 0
        assert field.uniformity_ratio < 3.0
        assert field.empty_fraction == 0.0

    def test_clustered_network_is_not_uniformly_dense(self, rng):
        """Theorem 1 converse: heavy clustering with weak mobility leaves
        most of the torus empty."""
        n = 1000
        model = place_home_points(rng, n=n, m=4, radius=0.02)
        field = density_field(model.points, SHAPE, f=16.0, n=n, grid_side=16)
        assert field.empty_fraction > 0.5
        assert field.uniformity_ratio == math.inf

    def test_ratio_degrades_with_f(self, rng):
        """Holding home-points fixed, shrinking the mobility radius (larger
        f) makes the density field less uniform."""
        n = 800
        model = place_home_points(rng, n=n, m=20, radius=0.05)
        weak = density_field(model.points, SHAPE, f=2.0, n=n, grid_side=12)
        strong = density_field(model.points, SHAPE, f=20.0, n=n, grid_side=12)
        assert strong.uniformity_ratio > weak.uniformity_ratio
