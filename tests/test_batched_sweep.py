"""End-to-end digest equality for trial-batched capacity sweeps.

The headline acceptance test of the batched path: a ``numpy64`` batched
sweep reproduces the serial sweep digest bit-for-bit at any worker
count, while non-canonical backends are tolerance-gated and live in a
disjoint digest/cache namespace.
"""

import numpy as np
import pytest

from repro.backend import get_backend
from repro.core.regimes import NetworkParameters
from repro.experiments.scaling import (
    _sweep_trial_keys,
    sweep_capacity,
    sweep_trial_payloads,
)
from repro.observability import RecordingTelemetry
from repro.observability.events import (
    BackendSelected,
    BatchDegradedToSerial,
    using_telemetry,
)

STRONG = NetworkParameters(
    alpha="1/4", cluster_exponent=1, bs_exponent="1/2", backbone_exponent=1
)
TRIVIAL_BS = NetworkParameters(
    alpha="3/4",
    cluster_exponent="1/2",
    cluster_radius_exponent="3/8",
    bs_exponent="3/4",
    backbone_exponent=1,
    validate=False,
)

GRID = [100, 200]


def serial_sweep(**kwargs):
    return sweep_capacity(
        STRONG, GRID, scheme="B", trials=4, seed=42, generic=True, **kwargs
    )


class TestDigestEquality:
    @pytest.mark.parametrize("workers", [None, 1, 2, 4])
    def test_batched_numpy64_reproduces_serial_digest(self, workers):
        want = serial_sweep()
        got = serial_sweep(workers=workers, batch_trials=3)
        assert np.array_equal(got.rates, want.rates)
        assert got.digest() == want.digest()
        assert got.backend is None  # canonical runs carry no backend tag

    def test_scheme_c_batched_matches_serial(self):
        kwargs = dict(
            parameters=TRIVIAL_BS,
            n_values=GRID,
            scheme="C",
            trials=3,
            seed=7,
            build_kwargs={"mobility": "static"},
        )
        want = sweep_capacity(**kwargs)
        got = sweep_capacity(**kwargs, batch_trials=3)
        assert np.array_equal(got.rates, want.rates)
        assert got.digest() == want.digest()

    def test_batch_width_does_not_matter(self):
        assert (
            serial_sweep(batch_trials=2).digest()
            == serial_sweep(batch_trials=4).digest()
        )


class TestNonCanonicalBackend:
    def test_numpy32_within_rtol_but_disjoint_digest(self):
        want = serial_sweep()
        got = serial_sweep(batch_trials=3, backend="numpy32")
        rtol = get_backend("numpy32").tolerance("scheme_rate")
        assert np.allclose(got.rates, want.rates, rtol=rtol, atol=1e-9)
        assert got.digest() != want.digest()
        assert got.backend == "numpy32"

    def test_cache_keys_are_namespaced(self):
        payloads = sweep_trial_payloads(
            STRONG, GRID, "B", trials=2, generic=True, seed=42
        )
        canonical = _sweep_trial_keys(payloads)
        gated = _sweep_trial_keys(payloads, backend="numpy32")
        assert set(canonical).isdisjoint(gated)

    def test_backend_requires_batching(self):
        with pytest.raises(ValueError, match="batch_trials"):
            serial_sweep(backend="numpy32")

    def test_batch_trials_must_be_at_least_two(self):
        with pytest.raises(ValueError, match="batch_trials"):
            serial_sweep(batch_trials=1)

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError):
            serial_sweep(batch_trials=2, backend="no-such-backend")


class TestTelemetry:
    def test_backend_selected_emitted_once(self):
        sink = RecordingTelemetry()
        with using_telemetry(sink):
            serial_sweep(batch_trials=3, backend="numpy32")
        events = sink.of_type(BackendSelected)
        assert len(events) == 1
        assert events[0].backend == "numpy32"
        assert not events[0].canonical
        assert events[0].batch_trials == 3

    def test_serial_sweep_reports_canonical_zero_width(self):
        sink = RecordingTelemetry()
        with using_telemetry(sink):
            serial_sweep()
        events = sink.of_type(BackendSelected)
        assert len(events) == 1
        assert events[0].backend == "numpy64"
        assert events[0].canonical
        assert events[0].batch_trials == 0


class TestSerialFallbackWarning:
    def test_scheme_without_batched_kernel_emits_degradation_event(
        self, caplog
    ):
        sink = RecordingTelemetry()
        with using_telemetry(sink):
            with caplog.at_level(
                "WARNING", logger="repro.experiments.scaling"
            ):
                result = sweep_capacity(
                    STRONG, GRID, scheme="A", trials=2, seed=5,
                    batch_trials=3,
                )
        events = sink.of_type(BatchDegradedToSerial)
        assert len(events) == 1
        assert events[0].scheme == "A"
        assert events[0].batch_trials == 3
        assert events[0].reason == "no_batched_kernel"
        assert any(
            "serially member-by-member" in record.message
            for record in caplog.records
        )
        # the fallback is still correct, just not vectorized
        want = sweep_capacity(STRONG, GRID, scheme="A", trials=2, seed=5)
        assert result.digest() == want.digest()

    def test_batched_scheme_does_not_emit_degradation(self):
        sink = RecordingTelemetry()
        with using_telemetry(sink):
            serial_sweep(batch_trials=3)
        assert sink.of_type(BatchDegradedToSerial) == []
