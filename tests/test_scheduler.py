"""Unit tests for scheduling policies (S*, S-bar, greedy matching)."""

import math

import numpy as np
import pytest

from repro.geometry.torus import pairwise_distances
from repro.wireless.protocol_model import ProtocolModel
from repro.wireless.scheduler import (
    GreedyMatchingScheduler,
    PolicySStar,
    VariableRangeScheduler,
)


class TestPolicySStar:
    def test_range_is_ct_over_sqrt_n(self):
        policy = PolicySStar(node_count=400, c_t=2.0)
        assert policy.transmission_range() == pytest.approx(0.1)
        assert policy.transmission_range(100) == pytest.approx(0.2)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            PolicySStar(node_count=1)
        with pytest.raises(ValueError):
            PolicySStar(node_count=10, c_t=0)

    def test_schedule_pairs_within_range(self, rng):
        positions = rng.random((200, 2))
        policy = PolicySStar(node_count=200, c_t=1.0)
        schedule = policy.schedule(positions)
        distances = pairwise_distances(positions)
        for i, j in schedule.pairs:
            assert distances[i, j] < schedule.transmission_range

    def test_schedule_is_protocol_feasible(self, rng):
        positions = rng.random((150, 2))
        policy = PolicySStar(node_count=150, c_t=1.5, delta=1.0)
        schedule = policy.schedule(positions)
        model = ProtocolModel(delta=1.0)
        assert model.is_feasible_schedule(
            positions, schedule.pairs, schedule.transmission_range
        )

    def test_active_nodes(self, rng):
        positions = rng.random((100, 2))
        policy = PolicySStar(node_count=100, c_t=1.5)
        schedule = policy.schedule(positions)
        assert len(schedule.active_nodes) == 2 * len(schedule)

    def test_nonempty_with_high_probability(self, rng):
        """Lemma 3 implies a constant fraction of nodes are scheduled.  The
        guard-emptiness constant is exp(-2 pi ((1+Delta) c_T)^2), so the
        constants must be small for the effect to be visible at n = 300."""
        total = 0
        policy = PolicySStar(node_count=300, c_t=0.4, delta=0.5)
        for _ in range(10):
            positions = rng.random((300, 2))
            total += len(policy.schedule(positions))
        assert total > 0


class TestVariableRange:
    def test_uses_given_range(self):
        scheduler = VariableRangeScheduler(0.07)
        assert scheduler.transmission_range() == 0.07

    def test_larger_range_schedules_fewer_pairs(self, rng):
        """The Theorem 2 effect: blowing up R_T suppresses concurrency
        because guard zones blanket the network."""
        positions = rng.random((300, 2))
        small = VariableRangeScheduler(1.0 / math.sqrt(300))
        large = VariableRangeScheduler(8.0 / math.sqrt(300))
        assert len(large.schedule(positions)) <= len(small.schedule(positions))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            VariableRangeScheduler(0.0)


class TestGreedyMatching:
    def test_schedule_is_protocol_feasible(self, rng):
        positions = rng.random((80, 2))
        scheduler = GreedyMatchingScheduler(0.08, delta=1.0)
        schedule = scheduler.schedule(positions)
        model = ProtocolModel(delta=1.0)
        assert model.is_feasible_schedule(positions, schedule.pairs, 0.08)

    def test_pairs_node_disjoint(self, rng):
        positions = rng.random((80, 2))
        schedule = GreedyMatchingScheduler(0.1).schedule(positions)
        nodes = [node for pair in schedule.pairs for node in pair]
        assert len(nodes) == len(set(nodes))

    def test_candidate_restriction(self, rng):
        positions = rng.random((40, 2))
        scheduler = GreedyMatchingScheduler(0.5)
        schedule = scheduler.schedule(positions, candidates=[(0, 1)])
        assert set(schedule.pairs) <= {(0, 1)}

    def test_schedules_at_least_as_many_as_sstar(self, rng):
        """Greedy matching is less strict than S*, so it should find at
        least as many links on the same snapshot."""
        positions = rng.random((200, 2))
        r = 1.5 / math.sqrt(200)
        greedy = GreedyMatchingScheduler(r, delta=1.0).schedule(positions)
        strict = PolicySStar(node_count=200, c_t=1.5, delta=1.0).schedule(positions)
        assert len(greedy) >= len(strict)

    def test_maximality(self, rng):
        """No in-range pair of unused nodes may remain addable."""
        positions = rng.random((60, 2))
        r = 0.06
        scheduler = GreedyMatchingScheduler(r, delta=1.0)
        schedule = scheduler.schedule(positions)
        model = ProtocolModel(delta=1.0)
        used = schedule.active_nodes
        distances = pairwise_distances(positions)
        for i in range(60):
            for j in range(i + 1, 60):
                if i in used or j in used or distances[i, j] > r:
                    continue
                candidate = list(schedule.pairs) + [(i, j)]
                assert not model.is_feasible_schedule(positions, candidate, r)


class TestTDMACellScheduler:
    def _make(self, ms_count=9, bs_count=3, colors=None):
        from repro.wireless.scheduler import TDMACellScheduler

        cell_of_ms = np.arange(ms_count) % bs_count
        colors = np.arange(bs_count) if colors is None else np.asarray(colors)
        return TDMACellScheduler(cell_of_ms, colors, ms_count, cell_range=0.1)

    def test_one_pair_per_active_cell(self):
        scheduler = self._make(colors=[0, 0, 1])
        schedule = scheduler.schedule(np.zeros((12, 2)))
        # slot 0 activates colour 0: BSs 0 and 1
        assert len(schedule) == 2
        assert all(peer in (9, 10) for _, peer in schedule.pairs)

    def test_groups_rotate(self):
        scheduler = self._make(colors=[0, 1, 2])
        served_bs = []
        for _ in range(6):
            schedule = scheduler.schedule(np.zeros((12, 2)))
            served_bs.extend(peer - 9 for _, peer in schedule.pairs)
        assert served_bs == [0, 1, 2, 0, 1, 2]

    def test_round_robin_within_cell(self):
        scheduler = self._make(ms_count=6, bs_count=1, colors=[0])
        served_ms = []
        for _ in range(12):
            schedule = scheduler.schedule(np.zeros((7, 2)))
            served_ms.append(schedule.pairs[0][0])
        assert sorted(set(served_ms)) == list(range(6))
        assert served_ms[:6] == served_ms[6:]

    def test_empty_cells_skipped(self):
        from repro.wireless.scheduler import TDMACellScheduler

        scheduler = TDMACellScheduler(
            np.zeros(4, dtype=int), np.array([0, 0]), 4, cell_range=0.1
        )
        schedule = scheduler.schedule(np.zeros((6, 2)))
        assert len(schedule) == 1  # BS 1 has no members

    def test_validation(self):
        from repro.wireless.scheduler import TDMACellScheduler

        with pytest.raises(ValueError):
            TDMACellScheduler(np.zeros(3, int), np.zeros(1, int), 4, 0.1)
        with pytest.raises(ValueError):
            TDMACellScheduler(np.zeros(3, int), np.zeros(1, int), 3, 0.0)
