"""Unit tests for the closed-form capacity results (Table I, Theorems 3-9)."""

from fractions import Fraction

import pytest

from repro.core.capacity import (
    Bottleneck,
    Scheme,
    analyze,
    capacity_lower_bound,
    capacity_upper_bound,
    infrastructure_capacity,
    mobility_capacity,
    no_infrastructure_capacity,
    optimal_backbone_exponent,
    optimal_scheme,
    optimal_transmission_range,
    per_node_capacity,
)
from repro.core.order import Order
from repro.core.regimes import InvalidParameters, NetworkParameters


def params(**kwargs):
    kwargs.setdefault("alpha", "1/4")
    kwargs.setdefault("cluster_exponent", 1)
    return NetworkParameters(**kwargs)


WEAK = dict(alpha="1/2", cluster_exponent="1/2", cluster_radius_exponent="1/2")
TRIVIAL = dict(
    alpha="3/4",
    cluster_exponent="1/2",
    cluster_radius_exponent="3/8",
    validate=False,
)


class TestMobilityTerm:
    def test_theorem3(self):
        # strong mobility without BSs: Theta(1/f)
        assert mobility_capacity(params()) == Order("-1/4")

    def test_dense_network_constant(self):
        assert mobility_capacity(params(alpha=0)) == Order.one()


class TestInfrastructureTerm:
    def test_access_limited(self):
        # phi = 1: min(k^2c/n, k/n) = k/n
        family = params(bs_exponent="7/8", backbone_exponent=1)
        assert infrastructure_capacity(family) == Order("-1/8")

    def test_backbone_limited(self):
        # phi = -1/4 < 0: min = n^{K + phi - 1} = n^{7/8 - 1/4 - 1}
        family = params(bs_exponent="7/8", backbone_exponent="-1/4")
        assert infrastructure_capacity(family) == Order("-3/8")

    def test_switch_exactly_at_phi_zero(self):
        at_zero = params(bs_exponent="7/8", backbone_exponent=0)
        assert infrastructure_capacity(at_zero) == Order("-1/8")

    def test_requires_infrastructure(self):
        with pytest.raises(InvalidParameters):
            infrastructure_capacity(params())


class TestNoInfrastructureCapacity:
    def test_strong_regime(self):
        assert no_infrastructure_capacity(params()) == Order("-1/4")

    def test_weak_regime_corollary3(self):
        # sqrt(m / (n^2 log m)) with M=1/2: exponent (1/2-2)/2 = -3/4
        family = NetworkParameters(**WEAK)
        capacity = no_infrastructure_capacity(family)
        assert capacity.poly_exponent == Fraction(-3, 4)
        assert capacity.log_exponent == Fraction(-1, 2)

    def test_boundary_rejected(self):
        family = NetworkParameters(
            alpha="1/2",
            cluster_exponent="1/2",
            cluster_radius_exponent="1/4",
            validate=False,
        )
        with pytest.raises(InvalidParameters):
            no_infrastructure_capacity(family)


class TestPerNodeCapacity:
    def test_strong_with_bs_mobility_dominant(self):
        family = params(bs_exponent="1/2", backbone_exponent=1)
        # max(n^-1/4, n^-1/2) = n^-1/4
        assert per_node_capacity(family) == Order("-1/4")

    def test_strong_with_bs_infrastructure_dominant(self):
        family = params(bs_exponent="7/8", backbone_exponent=1)
        assert per_node_capacity(family) == Order("-1/8")

    def test_weak_with_bs_theorem7(self):
        family = NetworkParameters(bs_exponent="3/4", backbone_exponent=1, **WEAK)
        assert per_node_capacity(family) == Order("-1/4")

    def test_trivial_with_bs_theorem9(self):
        family = NetworkParameters(bs_exponent="3/4", backbone_exponent=1, **TRIVIAL)
        assert per_node_capacity(family) == Order("-1/4")

    def test_weak_capacity_ignores_mobility_term(self):
        # in the weak regime 1/f does NOT appear even if larger: with a
        # starved backbone (phi = -1/2) the capacity drops to K + phi - 1
        # = -3/4, strictly below 1/f = n^{-1/2}
        family = NetworkParameters(bs_exponent="3/4", backbone_exponent="-1/2", **WEAK)
        assert per_node_capacity(family) == Order("-3/4")
        assert per_node_capacity(family) < family.f.reciprocal()

    def test_bounds_are_tight(self):
        family = params(bs_exponent="7/8")
        assert capacity_upper_bound(family) == capacity_lower_bound(family)


class TestOptimalRange:
    def test_strong(self):
        assert optimal_transmission_range(params()) == Order("-1/2")

    def test_weak_no_bs(self):
        family = NetworkParameters(**WEAK)
        expected = family.gamma.sqrt()
        assert optimal_transmission_range(family) == expected

    def test_weak_with_bs(self):
        family = NetworkParameters(bs_exponent="3/4", backbone_exponent=1, **WEAK)
        # r * sqrt(m/n) = n^{-1/2} * n^{-1/4} = n^{-3/4}
        assert optimal_transmission_range(family) == Order("-3/4")

    def test_trivial_with_bs(self):
        family = NetworkParameters(bs_exponent="3/4", backbone_exponent=1, **TRIVIAL)
        # r * sqrt(m/k) = n^{-3/8} * n^{(1/2-3/4)/2} = n^{-1/2}
        assert optimal_transmission_range(family) == Order("-1/2")


class TestOptimalScheme:
    def test_strong_no_bs(self):
        assert optimal_scheme(params()) is Scheme.SCHEME_A

    def test_strong_with_bs(self):
        assert optimal_scheme(params(bs_exponent="7/8")) is Scheme.SCHEME_A_PLUS_B

    def test_weak_no_bs(self):
        assert optimal_scheme(NetworkParameters(**WEAK)) is Scheme.STATIC_MULTIHOP

    def test_weak_with_bs(self):
        family = NetworkParameters(bs_exponent="3/4", backbone_exponent=1, **WEAK)
        assert optimal_scheme(family) is Scheme.SCHEME_B

    def test_trivial_with_bs(self):
        family = NetworkParameters(bs_exponent="3/4", backbone_exponent=1, **TRIVIAL)
        assert optimal_scheme(family) is Scheme.SCHEME_C


class TestAnalyze:
    def test_mobility_dominant_bottleneck(self):
        result = analyze(params(bs_exponent="1/2", backbone_exponent=1))
        assert result.bottleneck is Bottleneck.MOBILITY

    def test_access_bottleneck(self):
        result = analyze(params(bs_exponent="7/8", backbone_exponent=1))
        assert result.bottleneck is Bottleneck.ACCESS

    def test_backbone_bottleneck(self):
        # phi = -1/16 < 0 starves the backbone while the infrastructure term
        # (n^{-3/16}) still beats mobility (n^{-1/4})
        result = analyze(params(bs_exponent="7/8", backbone_exponent="-1/16"))
        assert result.bottleneck is Bottleneck.BACKBONE

    def test_interference_bottleneck_without_bs(self):
        result = analyze(NetworkParameters(**WEAK))
        assert result.bottleneck is Bottleneck.INTERFERENCE

    def test_summary_renders(self):
        text = analyze(params()).summary()
        assert "strong" in text
        assert "Theta" in text

    def test_boundary_rejected(self):
        family = NetworkParameters(
            alpha="1/2",
            cluster_exponent="1/2",
            cluster_radius_exponent="1/4",
            validate=False,
        )
        with pytest.raises(InvalidParameters):
            analyze(family)

    def test_weak_and_trivial_same_capacity_different_scheme(self):
        """The paper's headline subtlety: identical capacity, different
        optimal communication scheme in the weak vs trivial regimes."""
        weak = analyze(NetworkParameters(bs_exponent="3/4", backbone_exponent=1, **WEAK))
        trivial = analyze(
            NetworkParameters(bs_exponent="3/4", backbone_exponent=1, **TRIVIAL)
        )
        assert weak.capacity == trivial.capacity
        assert weak.scheme is not trivial.scheme


class TestBackboneProvisioning:
    def test_phi_zero_is_optimal(self):
        assert optimal_backbone_exponent() == Fraction(0)

    def test_infrastructure_term_saturates_at_phi_zero(self):
        """Increasing phi beyond 0 must not increase the infrastructure
        contribution; decreasing below 0 must strictly decrease it."""
        def infra_at(phi):
            family = params(bs_exponent="7/8", backbone_exponent=phi)
            return infrastructure_capacity(family)

        assert infra_at(0) == infra_at(1) == infra_at(2)
        assert infra_at("-1/4") < infra_at(0)
        assert infra_at("-1/2") < infra_at("-1/4")
