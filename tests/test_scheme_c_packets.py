"""Integration test: scheme C end-to-end at the packet level.

Combines the TDMA cell scheduler (Definition 13's scheduling) with the
three-phase BS router over the wired backbone, on a static clustered
network -- the full operational realisation of Theorem 9's scheme.
"""

import numpy as np
import pytest

from repro.geometry.torus import disk_sample
from repro.infrastructure.backbone import Backbone
from repro.infrastructure.placement import hexagonal_cluster_placement
from repro.mobility.processes import StaticProcess
from repro.routing.scheme_c import SchemeC
from repro.simulation.engine import SlottedSimulator
from repro.simulation.routers import SchemeBRouter
from repro.simulation.traffic import permutation_traffic
from repro.wireless.scheduler import TDMACellScheduler


@pytest.fixture(scope="module")
def scheme_c_simulation():
    n, m, radius, per_cluster = 120, 4, 0.05, 4
    rng = np.random.default_rng(8)
    centers = np.array([[0.25, 0.25], [0.25, 0.75], [0.75, 0.25], [0.75, 0.75]])
    assignment = rng.integers(0, m, size=n)
    positions = disk_sample(rng, centers[assignment], radius)
    bs = hexagonal_cluster_placement(centers, radius, per_cluster)
    bs_cluster = np.repeat(np.arange(m), per_cluster)
    backbone = Backbone(m * per_cluster, edge_capacity=1.0)
    scheme = SchemeC(
        ms_positions=positions,
        bs_positions=bs,
        ms_cluster=assignment,
        bs_cluster=bs_cluster,
        backbone=backbone,
        delta=1.0,
    )
    traffic = permutation_traffic(rng, n)
    flow_rate = scheme.sustainable_rate(traffic).per_node_rate
    scheduler = TDMACellScheduler(
        scheme.cell_of_ms,
        scheme._groups,
        ms_count=n,
        cell_range=scheme.cell_range,
    )
    router = SchemeBRouter(
        assignment, bs_cluster, backbone, rng, preferred_bs=scheme.cell_of_ms
    )
    sim = SlottedSimulator(
        StaticProcess(positions),
        scheduler,
        router,
        traffic,
        arrival_prob=0.5 * flow_rate,
        rng=rng,
        static_positions=bs,
    )
    metrics = sim.run(3000)
    return scheme, flow_rate, metrics


class TestSchemeCPacketLevel:
    def test_packets_delivered(self, scheme_c_simulation):
        _, _, metrics = scheme_c_simulation
        assert metrics.delivered > 50

    def test_queues_stable_below_capacity(self, scheme_c_simulation):
        _, _, metrics = scheme_c_simulation
        # at half the flow-level rate the backlog stays a small multiple of
        # the delivered count (no unbounded growth)
        assert metrics.in_flight < metrics.delivered

    def test_throughput_tracks_offered(self, scheme_c_simulation):
        _, flow_rate, metrics = scheme_c_simulation
        offered = 0.5 * flow_rate
        assert metrics.per_node_throughput > 0.4 * offered

    def test_hop_counts_are_two_wireless(self, scheme_c_simulation):
        """Scheme C sessions take exactly 2 wireless hops (up + down);
        the wired crossing is not a wireless hop."""
        _, _, metrics = scheme_c_simulation
        assert float(metrics.hop_counts.max()) <= 2.0

    def test_flow_prediction_positive(self, scheme_c_simulation):
        scheme, flow_rate, _ = scheme_c_simulation
        assert flow_rate > 0
        assert scheme.group_count >= 1
